(** TCP-style adaptive retransmission timeout (RFC 6298 / Jacobson-Karels).

    A verifier that polls the same prover repeatedly shares one estimator
    across sessions: each clean exchange feeds an RTT sample, the RTO tracks
    [SRTT + 4*RTTVAR], and every retransmission backs the RTO off
    exponentially until an un-retransmitted exchange re-anchors it (Karn's
    rule — the caller must not feed samples from retransmitted exchanges,
    and {!Reliable_protocol.run} does not). *)

open Ra_sim

type t

val create :
  ?initial_rto:Timebase.t -> ?min_rto:Timebase.t -> ?max_rto:Timebase.t -> unit -> t
(** Defaults: initial 15 s (conservative, pre-sample), floor 200 ms,
    ceiling 2 min. *)

val observe : t -> Timebase.t -> unit
(** Feed one RTT sample (request sent to report verified, no
    retransmissions in between). *)

val backoff : t -> unit
(** Double the RTO (capped) — call once per retransmission. *)

val rto : t -> Timebase.t
(** The current retransmission timeout. *)

val srtt : t -> Timebase.t option
(** Smoothed RTT, once at least one sample arrived. *)

val samples : t -> int
(** Samples folded into the estimate. *)

val note_gave_up : t -> unit
(** The session owning this estimator exhausted every attempt. Remembered so
    the next completed exchange is treated as recovery (see
    {!note_success}). *)

val note_success : t -> unit
(** A session finished with a verdict. If the estimator had accumulated
    backoffs — or the previous session gave up — the backoff multiplier is
    reset and the RTO re-anchored on [SRTT + 4*RTTVAR] (or the initial RTO
    when no sample has ever arrived). Karn's rule means a recovering
    session may never feed a sample, so this is the only way the RTO comes
    back down after an outage. *)

val backoffs : t -> int
(** Backoffs applied since the last reset (success or sample). *)

val clamped : t -> int
(** Zero/negative samples clamped instead of folded into the estimate —
    clock resets across a prover reboot, not real RTTs. *)

val save : t -> Bytes.t
(** Serialize the mutable estimator state (bounds excluded — they are
    rebuilt by the owner). Floats are bit-exact, so restore + replay
    yields the identical RTO stream. *)

val restore : t -> Bytes.t -> (unit, string) result
(** Overwrite the estimator state in place from a {!save} image built
    with the same bounds. *)
