(** The measurement process (MP): the prover-side engine that traverses
    memory, maintains locks, and produces a {!Report.t}.

    All timing is charged to the device's CPU through its cost model, so an
    atomic MP starves other tasks exactly as SMART would, and interruptible
    MPs are preempted by higher-priority jobs at block boundaries or
    mid-block. Digests are computed over the *real* bytes of the simulated
    memory, so malware detection downstream is emergent rather than
    hard-coded. *)

type config = {
  scheme : Scheme.t;
  hash : Ra_crypto.Algo.hash;
  signature : Ra_device.Cost_model.signature_alg option;
  priority : int;  (** CPU priority of the MP job(s) *)
  counter : int option;  (** folded into the MAC when present *)
}

val default_config : config
(** SMART over SHA-256, MAC only, priority 5. *)

type hooks = {
  on_start : unit -> unit;
      (** at ts, after locks are placed — only for interruptible MPs; an
          atomic MP gives other code no opportunity to run at ts *)
  on_block_measured : measured:int -> total:int -> unit;
      (** after each block of an interruptible MP — the instant at which
          other code (including malware) can observe progress. Never called
          for an atomic MP. *)
}

val null_hooks : hooks

val run :
  Ra_device.Device.t ->
  config ->
  nonce:Bytes.t ->
  ?hooks:hooks ->
  on_complete:(Report.t -> unit) ->
  unit ->
  unit
(** Start an MP now. [on_complete] fires at the virtual time the report is
    ready (after the signature, when one is configured). *)

val mac_over :
  hash:Ra_crypto.Algo.hash ->
  key:Bytes.t ->
  nonce:Bytes.t ->
  counter:int option ->
  order:int array ->
  block_content:(int -> Bytes.t) ->
  Bytes.t
(** The exact MAC computation MP performs, exposed so the verifier and the
    consistency checker recompute it over their own view of memory. The
    construction is hash-then-MAC:
    [MAC(key, nonce || counter? || (index || H(content)) per block in order)]
    — per-block digests are unkeyed (and therefore cacheable and shareable
    across devices), while the MAC binds them to the nonce, counter,
    traversal order and the device key. *)

val mac_over_digests :
  ?sched:Ra_crypto.Mac_stream.key_schedule ->
  hash:Ra_crypto.Algo.hash ->
  key:Bytes.t ->
  nonce:Bytes.t ->
  counter:int option ->
  order:int array ->
  digests:Bytes.t array ->
  unit ->
  Bytes.t
(** Same MAC, fed precomputed per-block digests ([digests.(i)] pairs with
    [order.(i)]); used by callers that obtain digests from a cache.
    [?sched] supplies a precomputed key schedule (it must match [hash]
    and [key]) so batch verification derives the key state once. *)

val block_digest : Ra_device.Device.t -> Ra_crypto.Algo.hash -> int -> Bytes.t
(** Digest of one block of the device's memory, served through the device's
    digest cache when enabled (zero-copy read, version-keyed memo, shared
    store). The result is shared — treat as immutable. *)

val block_digests :
  Ra_device.Device.t -> Ra_crypto.Algo.hash -> int array -> Bytes.t array
(** Batch {!block_digest} over a traversal order of distinct blocks: one
    zero-copy borrow, one store lock acquisition, misses hashed by the
    interleaved kernel. Digests and cache counters are bit-identical to
    the per-block calls. Results are shared — treat as immutable. *)
