(** Link-layer framing for protocol messages: payload plus a CRC-32 frame
    check sequence.

    Why it exists: a report whose bits flipped in transit fails MAC
    verification exactly like a report from a tampered device. The frame
    check lets a receiver tell the two apart — a damaged frame is dropped
    (and retransmission recovers it), while a frame that arrives intact but
    fails the attestation MAC is evidence about the {e device}. The chaos
    harness's "corruption is never silently accepted, and never becomes a
    false Tampered verdict" invariant rests on this separation. *)

val seal : Bytes.t -> Bytes.t
(** [payload || crc32(payload)], big-endian, 4 bytes of overhead. *)

val open_ : Bytes.t -> (Bytes.t, string) result
(** Strip and check the frame check sequence. [Error] means the frame was
    damaged in transit (or truncated below 4 bytes) and must be treated as
    lost, never parsed. *)
