(** Link-layer framing for protocol messages: payload plus a CRC-32 frame
    check sequence.

    Why it exists: a report whose bits flipped in transit fails MAC
    verification exactly like a report from a tampered device. The frame
    check lets a receiver tell the two apart — a damaged frame is dropped
    (and retransmission recovers it), while a frame that arrives intact but
    fails the attestation MAC is evidence about the {e device}. The chaos
    harness's "corruption is never silently accepted, and never becomes a
    false Tampered verdict" invariant rests on this separation. *)

val seal : Bytes.t -> Bytes.t
(** [payload || crc32(payload)], big-endian, 4 bytes of overhead. The
    datagram encoding: the payload length is implicit in the datagram. *)

val open_ : Bytes.t -> (Bytes.t, string) result
(** Strip and check the frame check sequence. [Error] means the frame was
    damaged in transit (or truncated below 4 bytes) and must be treated as
    lost, never parsed. *)

(** {2 Stream framing}

    A TCP connection delivers a byte stream, not datagrams: one [write]
    can arrive as several reads, several writes as one read, and a torn
    write leaves the receiver holding half a frame. The stream encoding
    makes frame boundaries explicit —
    [['R' 'F' | u32 length | payload | u32 crc32(payload)]] — and
    {!Reader} reassembles frames incrementally from reads cut at {e any}
    byte boundary. *)

val seal_stream : Bytes.t -> Bytes.t
(** The length-prefixed stream encoding of one payload
    ({!stream_overhead} bytes of framing). Raises [Invalid_argument]
    beyond {!max_payload}. *)

val max_payload : int
(** Upper bound on a stream frame's payload (1 MiB): a hostile or
    corrupted length field can never make a reader allocate more than
    this before the check fails. *)

val stream_overhead : int
(** Bytes of framing around a stream payload (magic + length + CRC = 10). *)

(** Incremental reassembly of stream frames from arbitrary read chunks. *)
module Reader : sig
  type t

  type result =
    | Frame of Bytes.t  (** one complete, CRC-checked payload *)
    | Await  (** the buffered bytes end mid-frame; feed more *)
    | Corrupt of string
        (** framing is broken (bad magic, oversized length, CRC failure):
            the stream has no trustworthy resynchronisation point, so the
            reader latches the error — drop the connection *)

  val create : unit -> t

  val feed : t -> ?off:int -> ?len:int -> Bytes.t -> unit
  (** Append a read chunk (or a slice of one). Chunks may split frames at
      any byte boundary, including inside the magic, the length field or
      the CRC. Raises [Invalid_argument] on an invalid slice. Bytes fed
      after the reader latched {!Corrupt} are discarded. *)

  val next : t -> result
  (** Consume and return the next complete frame, if the buffer holds
      one. Call repeatedly until {!Await} — one feed can complete several
      frames. After {!Corrupt}, every subsequent call returns the same
      error. *)

  val buffered : t -> int
  (** Bytes held but not yet consumed as frames (0 after a clean drain). *)

  val frames : t -> int
  (** Complete frames delivered so far. *)

  val bytes_fed : t -> int
  (** Total bytes accepted by {!feed}. *)
end
