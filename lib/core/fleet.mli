(** Fleet management: one verifier responsible for many provers.

    Each device's attestation key is HKDF-derived from a master secret and
    the device identifier, so the verifier stores one secret and a device
    roster rather than per-device key material, and a leaked device key
    compromises only that device.

    Roll calls scale two ways: the flat {!roll_call} fans out one pool
    task per device, and {!sharded_roll_call} splits the roster into
    contiguous shards — one task per shard, virtual devices materialized
    inside the task — so a million-device fleet never holds a million
    simulators live. Both aggregate evidence hierarchically: device
    reports are reduced to fixed-width segment Merkle roots and those to
    one fleet root, which is bit-identical for any [jobs], any [shards],
    and across the two entry points. *)

open Ra_sim

type t

type device_id = string

val create : ?stripes:int -> master_secret:Bytes.t -> unit -> t
(** [stripes] sizes the shared digest store's lock striping (see
    {!Ra_cache.Store.create}); the default suits tens of concurrent
    shards. *)

val derive_key : t -> device_id -> Bytes.t
(** The 32-byte per-device attestation key. Deterministic per (master,
    id). *)

val store : t -> Ra_cache.Store.t
(** The fleet-wide content-addressed digest store every provisioned device
    (and its verifier view) shares: identical firmware blocks across the
    fleet are hashed exactly once, no matter how many devices measure. *)

val provision :
  t -> device_id -> ?config:Ra_device.Device.config -> unit -> Ra_device.Device.t
(** Build a device whose key is the derived key and whose firmware seed is
    the fleet-wide seed (all provisioned devices run the same release);
    registers the device in the roster. The [config] fields [key], [seed]
    and [store] are overridden. Raises [Invalid_argument] if the id is
    already enrolled. *)

val provision_virtual :
  t ->
  device_id ->
  ?config:Ra_device.Device.config ->
  ?tamper:(Ra_device.Device.t -> unit) ->
  unit ->
  unit
(** Enrol a device by recipe instead of by instance: the device is
    materialized (deterministically, from the stored config) inside
    whichever roll-call task attests it, [tamper] is applied to the fresh
    instance, and the simulator is dropped once its report is in. This is
    what keeps million-device fleets within memory — the live set is one
    shard's worth of devices, not the roster. The per-device memo cache
    does not persist across roll calls for virtual devices (each call
    attests a fresh instance); use {!provision} when warm-cache behaviour
    matters. Same key/seed/store overrides as {!provision}. *)

val verifier_for : t -> device_id -> Verifier.t
(** The verifier view (expected image + derived key) for an enrolled
    device. Raises [Not_found] for unknown ids. *)

val enrolled : t -> device_id list
(** Roster, in enrolment order. *)

val device : t -> device_id -> Ra_device.Device.t
(** Raises [Not_found] for unknown ids. For a {!provision_virtual} entry
    this materializes a fresh instance on every call. *)

type roll_call = {
  clean : device_id list;
  tampered : device_id list;
  digest_requests : int;
      (** block-digest demands during this roll call, prover and verifier
          sides combined; always [cache_hits + store_hits + hashed] *)
  cache_hits : int;  (** served by per-device version memos *)
  store_hits : int;  (** served by the shared content-addressed store *)
  hashed : int;  (** digests actually computed, fleet-wide *)
  batch_hashed : int;
      (** of [hashed], computed through the store's batch entry point —
          equals [hashed] under atomic measurement, where both the
          prover's round and the verifier's report check batch their
          digests *)
  distinct_blocks : int;  (** distinct block contents in the store *)
  shards : int;  (** effective shard count (1 for the flat entry point) *)
  shard_roots : Bytes.t array;
      (** per-shard Merkle roots over that shard's segment roots — the
          handle for localizing a divergent shard without recomputing the
          fleet *)
  fleet_root : Bytes.t;
      (** Merkle root over all segment roots (segments are fixed
          1024-device runs of the roster, independent of sharding), where
          each leaf is [id || verdict byte || report MAC]. Invariant
          across [jobs] and [shards]; [Bytes.empty] for an empty
          roster. *)
}

val hit_rate : roll_call -> float
(** [(cache_hits + store_hits) / digest_requests]; 0 on an empty fleet. *)

val segment_size : int
(** Devices per aggregation segment (1024): the fixed fan-in that
    decouples the fleet Merkle tree's shape from the shard count. *)

val roll_call :
  t ->
  ?jobs:int ->
  ?journal:Ra_journal.Journal.t ->
  ?net_delay:Timebase.t ->
  Mp.config ->
  roll_call
(** Run the full on-demand protocol against every enrolled device and
    partition the roster by verdict. Devices are independent simulations,
    so the roll call fans out over the {!Ra_parallel} domain pool; the
    result — verdicts, cache counters and Merkle roots alike — is
    bit-identical for any [jobs] value, because the shared store computes
    each distinct content exactly once regardless of arrival order. With
    [journal], a committed "roll-call" provenance record (verdict
    partition sizes, cache and store counters, fleet root and
    concatenated shard roots) is appended after the fan-out settles. *)

val sharded_roll_call :
  t ->
  ?jobs:int ->
  ?shards:int ->
  ?journal:Ra_journal.Journal.t ->
  ?net_delay:Timebase.t ->
  Mp.config ->
  roll_call
(** {!roll_call} restructured for scale: the roster's segments are split
    into [shards] (default {!Ra_parallel.default_jobs}) contiguous runs,
    one pool task per shard, each walking its devices sequentially and
    reducing finished segments to their roots immediately. Requested
    shard counts are clamped to the segment count — a segment is never
    split — and the effective count is reported in [shards]. The verdict
    partition, every counter and the fleet root are bit-identical to the
    flat {!roll_call} for any [shards] and [jobs] combination. *)

val attest_all : t -> ?net_delay:Timebase.t -> Mp.config -> roll_call
(** {!roll_call} with [jobs:1] (kept for callers that want the sequential
    path explicitly). *)
