(** Fleet management: one verifier responsible for many provers.

    Each device's attestation key is HKDF-derived from a master secret and
    the device identifier, so the verifier stores one secret and a device
    roster rather than per-device key material, and a leaked device key
    compromises only that device. *)

open Ra_sim

type t

type device_id = string

val create : master_secret:Bytes.t -> t

val derive_key : t -> device_id -> Bytes.t
(** The 32-byte per-device attestation key. Deterministic per (master,
    id). *)

val store : t -> Ra_cache.Store.t
(** The fleet-wide content-addressed digest store every provisioned device
    (and its verifier view) shares: identical firmware blocks across the
    fleet are hashed exactly once, no matter how many devices measure. *)

val provision :
  t -> device_id -> ?config:Ra_device.Device.config -> unit -> Ra_device.Device.t
(** Build a device whose key is the derived key and whose firmware seed is
    the fleet-wide seed (all provisioned devices run the same release);
    registers the device in the roster. The [config] fields [key], [seed]
    and [store] are overridden. Raises [Invalid_argument] if the id is
    already enrolled. *)

val verifier_for : t -> device_id -> Verifier.t
(** The verifier view (expected image + derived key) for an enrolled
    device. Raises [Not_found] for unknown ids. *)

val enrolled : t -> device_id list
(** Roster, in enrolment order. *)

val device : t -> device_id -> Ra_device.Device.t
(** Raises [Not_found] for unknown ids. *)

type roll_call = {
  clean : device_id list;
  tampered : device_id list;
  digest_requests : int;
      (** block-digest demands during this roll call, prover and verifier
          sides combined; always [cache_hits + store_hits + hashed] *)
  cache_hits : int;  (** served by per-device version memos *)
  store_hits : int;  (** served by the shared content-addressed store *)
  hashed : int;  (** digests actually computed, fleet-wide *)
  batch_hashed : int;
      (** of [hashed], computed through the store's batch entry point —
          equals [hashed] under atomic measurement, where both the
          prover's round and the verifier's report check batch their
          digests *)
  distinct_blocks : int;  (** distinct block contents in the store *)
}

val hit_rate : roll_call -> float
(** [(cache_hits + store_hits) / digest_requests]; 0 on an empty fleet. *)

val roll_call :
  t ->
  ?jobs:int ->
  ?journal:Ra_journal.Journal.t ->
  ?net_delay:Timebase.t ->
  Mp.config ->
  roll_call
(** Run the full on-demand protocol against every enrolled device and
    partition the roster by verdict. Devices are independent simulations,
    so the roll call fans out over the {!Ra_parallel} domain pool; the
    result — verdicts and cache counters alike — is bit-identical for any
    [jobs] value, because the shared store computes each distinct content
    exactly once regardless of arrival order. With [journal], a committed
    "roll-call" provenance record (verdict partition sizes plus the cache
    and store counters) is appended after the fan-out settles. *)

val attest_all : t -> ?net_delay:Timebase.t -> Mp.config -> roll_call
(** {!roll_call} with [jobs:1] (kept for callers that want the sequential
    path explicitly). *)
