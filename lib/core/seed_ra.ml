open Ra_sim
open Ra_device

type config = {
  mp : Mp.config;
  shared_seed : int;
  mean_interval : Timebase.t;
  first_after : Timebase.t;
}

let default_config =
  {
    mp = Mp.default_config;
    shared_seed = 0xD5EED;
    mean_interval = Timebase.s 30;
    first_after = Timebase.zero;
  }

(* Gaps uniform in [0.5, 1.5] * mean keep the schedule unpredictable without
   a shared clock drifting experiment out of scope. *)
let schedule ~shared_seed ~mean_interval ~first_after ~count =
  let rng = Prng.create ~seed:(shared_seed lxor 0x5EED) in
  let rec go t n acc =
    if n = 0 then List.rev acc
    else begin
      let factor = 0.5 +. Prng.float rng in
      let gap =
        max 1 (int_of_float (Float.round (float_of_int mean_interval *. factor)))
      in
      let t = Timebase.add t gap in
      go t (n - 1) (t :: acc)
    end
  in
  go first_after count []

type prover = {
  device : Device.t;
  config : config;
  send : Timebase.t * Report.t -> unit;
  mutable running : bool;
  mutable counter : int;
  mutable sent : int;
  mutable missed : int;
  rng : Prng.t; (* the secret trigger stream, inaccessible to malware *)
}

(* The timeout circuit is dedicated hardware: it keeps ticking through
   crashes and reboots, so it re-arms itself unconditionally. A trigger that
   fires while the CPU is down is simply missed — the verifier sees the
   absent report as a schedule gap. *)
let rec arm t =
  if t.running then begin
    let eng = t.device.Device.engine in
    let factor = 0.5 +. Prng.float t.rng in
    let gap =
      max 1
        (int_of_float (Float.round (float_of_int t.config.mean_interval *. factor)))
    in
    ignore
      (Engine.schedule_after eng ~delay:gap (fun _ ->
           if t.running then begin
             arm t;
             if Device.is_up t.device then begin
               t.counter <- t.counter + 1;
               let counter = t.counter in
               Engine.recordf eng ~tag:"seed" "trigger #%d fires" counter;
               let nonce = Bytes.create 8 in
               Ra_crypto.Bytesutil.store64_be nonce 0 (Int64.of_int counter);
               Mp.run t.device
                 { t.config.mp with Mp.counter = Some counter }
                 ~nonce
                 ~on_complete:(fun report ->
                   t.sent <- t.sent + 1;
                   t.send (Engine.now eng, report))
                 ()
             end
             else begin
               t.missed <- t.missed + 1;
               Engine.record eng ~tag:"seed" "trigger missed (device down)"
             end
           end))
  end

let start device config ~send =
  let t =
    {
      device;
      config;
      send;
      running = true;
      counter = 0;
      sent = 0;
      missed = 0;
      rng = Prng.create ~seed:(config.shared_seed lxor 0x5EED);
    }
  in
  ignore
    (Engine.schedule device.Device.engine ~at:config.first_after (fun _ -> arm t));
  t

let stop t = t.running <- false

let reports_sent t = t.sent

let missed_triggers t = t.missed

type outcome = { accepted : int; tampered : int; replayed : int; missing : int }

let monitor verifier ~expected ~tolerance received =
  let accepted = ref 0 and tampered = ref 0 and replayed = ref 0 in
  let last_counter = ref 0 in
  let valid = ref [] in
  List.iter
    (fun (time, report) ->
      match report.Report.counter with
      | None -> incr tampered
      | Some c ->
        if c <= !last_counter then incr replayed
        else begin
          match Verifier.verify verifier report with
          | Verifier.Clean ->
            last_counter := c;
            incr accepted;
            valid := time :: !valid
          | Verifier.Tampered ->
            last_counter := c;
            incr tampered;
            valid := time :: !valid
        end)
    received;
  let arrivals = List.rev !valid in
  let covered expected_time =
    List.exists
      (fun arrival ->
        arrival >= expected_time
        && Timebase.sub arrival expected_time <= tolerance)
      arrivals
  in
  let missing = List.length (List.filter (fun t -> not (covered t)) expected) in
  { accepted = !accepted; tampered = !tampered; replayed = !replayed; missing }
