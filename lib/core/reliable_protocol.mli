(** On-demand RA over an unreliable network: retransmission with a stable
    per-session nonce, prover-side duplicate suppression, CRC-framed wire
    messages (see {!Frame} for why that matters under corruption), and a
    TCP-style recovery policy — exponential backoff with jitter, optionally
    anchored to a shared {!Rtt} estimator.

    Crash-awareness: the prover's session table (measurement in flight /
    cached report) is volatile. When the device {!Ra_device.Device.crash}es,
    it is wiped, so a request retransmitted after reboot runs a {e fresh}
    measurement rather than replaying a stale pre-crash report; while the
    device is down, its radio receives nothing. *)

open Ra_sim

type config = {
  mp : Mp.config;
  channel : Channel.config;  (** applied to both directions *)
  auth_time : Timebase.t;
  retry_timeout : Timebase.t;
      (** initial retransmission timeout (overridden by [?rtt] when given) *)
  max_attempts : int;
  backoff : float;  (** timeout multiplier per retry, >= 1 (2.0 = classic) *)
  backoff_jitter : float;
      (** each timeout is stretched by a uniform fraction in [0, jitter] to
          desynchronise retry storms; 0 disables *)
  max_timeout : Timebase.t;  (** backoff ceiling *)
}

val default_config : config
(** SMART MP, ideal channel, 200 us auth, 15 s initial timeout, 4 attempts,
    2x backoff with 10% jitter, 2 min ceiling. *)

type result = {
  verdict : Verifier.verdict option;  (** [None]: all attempts timed out *)
  attempts : int;  (** requests the verifier transmitted *)
  duplicates_suppressed : int;
      (** every redundant request copy the prover absorbed
          (= [retransmits_absorbed + channel_duplicates_absorbed]) *)
  retransmits_absorbed : int;
      (** redundant copies that were verifier retransmissions (carrying an
          attempt number not seen before) *)
  channel_duplicates_absorbed : int;
      (** redundant copies manufactured by channel duplication (an attempt
          number arriving twice) *)
  duplicate_replies_ignored : int;
      (** reply copies the verifier discarded because their sequence number
          was already seen — channel-duplicated replies, distinguishable
          from retransmitted replies, which carry fresh numbers *)
  corrupted_dropped : int;
      (** frames (either direction) dropped by the CRC frame check — damage
          in transit is recovered by retransmission, never surfaced as a
          Tampered verdict *)
  measurements_run : int;  (** MPs actually executed (want: at most 1) *)
  completed_at : Timebase.t option;  (** when the verdict was reached *)
  gave_up_at : Timebase.t option;
      (** when the last attempt's timeout expired, if no verdict *)
}

val run :
  Ra_device.Device.t ->
  Verifier.t ->
  config ->
  ?rtt:Rtt.t ->
  ?mp_hooks:Mp.hooks ->
  on_done:(result -> unit) ->
  unit ->
  unit
(** Start one attestation session now; [on_done] fires at the verified
    report or after the last attempt's timeout.

    [?rtt]: a shared estimator, typically reused across sessions with the
    same prover. It seeds the initial timeout (instead of [retry_timeout]),
    is backed off on every retransmission, and — per Karn's rule — receives
    an RTT sample only from sessions that completed without retransmitting. *)
