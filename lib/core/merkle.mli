(** Hash tree over the prover's blocks, for incremental attestation.

    Leaves are domain-separated digests of [(index, content)]; internal
    nodes hash their children. Updating one block touches a log-depth path,
    so re-attesting after small churn costs hashing the dirty blocks plus
    the paths — not the whole memory. *)

type t

val build : Ra_crypto.Algo.hash -> leaves:Bytes.t array -> t
(** Raises [Invalid_argument] on an empty leaf array. The array is copied;
    later external mutation does not affect the tree. *)

val of_memory : Ra_crypto.Algo.hash -> Ra_device.Memory.t -> t
(** One leaf per block, over the current contents. *)

val root_of_leaves : Ra_crypto.Algo.hash -> leaves:Bytes.t array -> Bytes.t
(** [root (build hash ~leaves)] without retaining the tree: one scratch
    digest level folded in place, for aggregation paths (fleet roots over
    segment roots) that never need proofs or updates. Raises
    [Invalid_argument] on an empty leaf array. *)

val leaf_count : t -> int

val root : t -> Bytes.t

val update : t -> index:int -> content:Bytes.t -> unit
(** Replace one leaf and recompute its path to the root. O(log n) digests. *)

val proof : t -> index:int -> Bytes.t list
(** Sibling digests from leaf to root. *)

val verify_proof :
  Ra_crypto.Algo.hash ->
  root:Bytes.t ->
  index:int ->
  content:Bytes.t ->
  leaf_count:int ->
  proof:Bytes.t list ->
  bool
(** Check that [content] at [index] is consistent with [root]. *)

val digests_performed : t -> int
(** Total leaf+node digests computed since construction — the cost counter
    the incremental-attestation experiment charges to the cost model. *)
