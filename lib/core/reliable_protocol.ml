open Ra_sim
open Ra_device

type config = {
  mp : Mp.config;
  channel : Channel.config;
  auth_time : Timebase.t;
  retry_timeout : Timebase.t;
  max_attempts : int;
  backoff : float;
  backoff_jitter : float;
  max_timeout : Timebase.t;
}

let default_config =
  {
    mp = Mp.default_config;
    channel = Channel.ideal;
    auth_time = Timebase.us 200;
    retry_timeout = Timebase.s 15;
    max_attempts = 4;
    backoff = 2.0;
    backoff_jitter = 0.1;
    max_timeout = Timebase.minutes 2;
  }

type result = {
  verdict : Verifier.verdict option;
  attempts : int;
  duplicates_suppressed : int;
  retransmits_absorbed : int;
  channel_duplicates_absorbed : int;
  duplicate_replies_ignored : int;
  corrupted_dropped : int;
  measurements_run : int;
  completed_at : Timebase.t option;
  gave_up_at : Timebase.t option;
}

type prover_session = In_progress | Done of Report.t (* cached report *)

(* --- wire helpers: [attempt u16 || nonce] requests, [seq u16 || report]
   replies, both CRC-framed ------------------------------------------------ *)

let encode_request ~attempt nonce =
  let b = Bytes.create (2 + Bytes.length nonce) in
  Bytes.set b 0 (Char.chr ((attempt lsr 8) land 0xff));
  Bytes.set b 1 (Char.chr (attempt land 0xff));
  Bytes.blit nonce 0 b 2 (Bytes.length nonce);
  Frame.seal b

let decode_request payload =
  if Bytes.length payload < 2 then None
  else
    let attempt = (Char.code (Bytes.get payload 0) lsl 8) lor Char.code (Bytes.get payload 1) in
    Some (attempt, Bytes.sub payload 2 (Bytes.length payload - 2))

let encode_reply ~seq report =
  let wire = Report.encode report in
  let b = Bytes.create (2 + Bytes.length wire) in
  Bytes.set b 0 (Char.chr ((seq lsr 8) land 0xff));
  Bytes.set b 1 (Char.chr (seq land 0xff));
  Bytes.blit wire 0 b 2 (Bytes.length wire);
  Frame.seal b

let decode_reply payload =
  if Bytes.length payload < 2 then None
  else begin
    let seq = (Char.code (Bytes.get payload 0) lsl 8) lor Char.code (Bytes.get payload 1) in
    match Report.decode (Bytes.sub payload 2 (Bytes.length payload - 2)) with
    | Ok report -> Some (seq, report)
    | Error _ -> None
  end

let run device verifier config ?rtt ?(mp_hooks = Mp.null_hooks) ~on_done () =
  if config.max_attempts < 1 then invalid_arg "Reliable_protocol: max_attempts < 1";
  if config.backoff < 1.0 then invalid_arg "Reliable_protocol: backoff < 1";
  if config.backoff_jitter < 0.0 then invalid_arg "Reliable_protocol: negative jitter";
  let eng = device.Device.engine in
  let rng = Prng.split (Engine.prng eng) in
  let nonce = Prng.bytes (Engine.prng eng) 16 in
  let attempts = ref 0 in
  let retransmits = ref 0 in
  let channel_dups = ref 0 in
  let dup_replies = ref 0 in
  let corrupted = ref 0 in
  let measurements = ref 0 in
  let finished = ref false in
  (* forward declarations to tie the two channel callbacks together *)
  let uplink = ref None (* request frames: Vrf -> Prv *) in
  let downlink = ref None (* reply frames: Prv -> Vrf *) in
  let send_frame frame =
    match !downlink with Some ch -> Channel.send ch frame | None -> ()
  in
  (* Prover-side per-boot volatile state: the session table (measurement in
     flight / cached reply) and the set of request copies already seen. A
     crash wipes both, so a request retransmitted after reboot triggers a
     fresh measurement instead of replaying a stale cached report. *)
  let sessions : (string, prover_session) Hashtbl.t = Hashtbl.create 4 in
  let seen_copies : (string * int, unit) Hashtbl.t = Hashtbl.create 8 in
  let reply_seq = ref 0 in
  Device.on_crash device (fun () ->
      Hashtbl.reset sessions;
      Hashtbl.reset seen_copies);
  let prover_receives frame =
    (* a powered-down radio receives nothing *)
    if Device.is_up device then begin
      match Frame.open_ frame with
      | Error _ -> incr corrupted
      | Ok payload ->
        (match decode_request payload with
        | None -> incr corrupted
        | Some (attempt, request_nonce) ->
          let key = Bytes.to_string request_nonce in
          let copy_key = (key, attempt) in
          let fresh_copy = not (Hashtbl.mem seen_copies copy_key) in
          Hashtbl.replace seen_copies copy_key ();
          (match Hashtbl.find_opt sessions key with
          | Some In_progress ->
            if fresh_copy then incr retransmits else incr channel_dups
          | Some (Done cached) ->
            if fresh_copy then incr retransmits else incr channel_dups;
            (* retransmitted replies get a fresh sequence number, so on the
               verifier side a repeated number always means the channel
               duplicated a copy *)
            incr reply_seq;
            send_frame (encode_reply ~seq:!reply_seq cached)
          | None ->
            Hashtbl.replace sessions key In_progress;
            let boot_epoch = Device.epoch device in
            ignore
              (Cpu.submit device.Device.cpu ~name:"mp-auth"
                 ~priority:config.mp.Mp.priority ~duration:config.auth_time
                 ~on_complete:(fun () ->
                   incr measurements;
                   Mp.run device config.mp ~nonce:request_nonce ~hooks:mp_hooks
                     ~on_complete:(fun report ->
                       (* the CPU flush makes this unreachable across a
                          reboot, but stay paranoid about stale epochs *)
                       if Device.epoch device = boot_epoch then begin
                         Hashtbl.replace sessions key (Done report);
                         incr reply_seq;
                         send_frame (encode_reply ~seq:!reply_seq report)
                       end)
                     ())
                 ())))
    end
  in
  let finish verdict =
    if not !finished then begin
      finished := true;
      (match (rtt, verdict) with
      | Some estimator, Some _ -> Rtt.note_success estimator
      | Some estimator, None -> Rtt.note_gave_up estimator
      | None, _ -> ());
      let now = Engine.now eng in
      let deliver () =
        on_done
          {
            verdict;
            attempts = !attempts;
            duplicates_suppressed = !retransmits + !channel_dups;
            retransmits_absorbed = !retransmits;
            channel_duplicates_absorbed = !channel_dups;
            duplicate_replies_ignored = !dup_replies;
            corrupted_dropped = !corrupted;
            measurements_run = !measurements;
            completed_at = (match verdict with Some _ -> Some now | None -> None);
            gave_up_at = (match verdict with Some _ -> None | None -> Some now);
          }
      in
      (* Straggling copies of the verdict-carrying reply (channel duplicates,
         reordered siblings) land within the channel's displacement bound of
         the first copy; wait it out so the result's counters include them.
         The verdict itself is dated [now], not delivery. *)
      let drain =
        let c = config.channel in
        Timebase.add (5 * c.Channel.delay) (Timebase.add c.Channel.jitter (Timebase.ms 1))
      in
      ignore (Engine.schedule_after eng ~delay:drain (fun _ -> deliver ()))
    end
  in
  let seen_replies : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let first_sent_at = ref Timebase.zero in
  let verifier_receives frame =
    match Frame.open_ frame with
    | Error _ -> incr corrupted
    | Ok payload ->
      (match decode_reply payload with
      | None -> incr corrupted
      | Some (seq, report) ->
        if Hashtbl.mem seen_replies seq then incr dup_replies
        else begin
          Hashtbl.replace seen_replies seq ();
          if not !finished then begin
            (* Karn's rule: only an exchange with no retransmission yields
               an RTT sample. *)
            (match rtt with
            | Some estimator when !attempts = 1 ->
              Rtt.observe estimator (Timebase.sub (Engine.now eng) !first_sent_at)
            | Some _ | None -> ());
            finish (Some (Verifier.verify_fresh verifier ~nonce report))
          end
        end)
  in
  uplink :=
    Some
      (Channel.create eng config.channel ~corrupt:Channel.flip_random_bit
         ~deliver:prover_receives ());
  downlink :=
    Some
      (Channel.create eng config.channel ~corrupt:Channel.flip_random_bit
         ~deliver:verifier_receives ());
  let rto =
    ref (match rtt with Some estimator -> Rtt.rto estimator | None -> config.retry_timeout)
  in
  let rec attempt () =
    if not !finished then begin
      if !attempts >= config.max_attempts then finish None
      else begin
        incr attempts;
        if !attempts = 1 then first_sent_at := Engine.now eng
        else begin
          (* retransmission: exponential backoff, locally and in the shared
             estimator *)
          (match rtt with Some estimator -> Rtt.backoff estimator | None -> ());
          rto := min config.max_timeout (max 1 (int_of_float (float_of_int !rto *. config.backoff)))
        end;
        let jitter =
          let span = int_of_float (float_of_int !rto *. config.backoff_jitter) in
          if span > 0 then Prng.int rng ~bound:(span + 1) else 0
        in
        Engine.recordf eng ~tag:"protocol" "request attempt %d (timeout %s)"
          !attempts
          (Timebase.to_string (Timebase.add !rto jitter));
        (match !uplink with
        | Some ch -> Channel.send ch (encode_request ~attempt:!attempts nonce)
        | None -> ());
        ignore
          (Engine.schedule_after eng ~delay:(Timebase.add !rto jitter) (fun _ ->
               attempt ()))
      end
    end
  in
  attempt ()
