open Ra_sim
open Ra_device

type config = {
  receive_ns_per_byte : float;
  priority : int;
  hash : Ra_crypto.Algo.hash;
}

let default_config =
  { receive_ns_per_byte = 100.; priority = 5; hash = Ra_crypto.Algo.SHA_256 }

type outcome = {
  erasure_proof_ok : bool;
  update_verdict : Verifier.verdict;
  malware_survived : bool;
  erased_at : Timebase.t;
  completed_at : Timebase.t;
}

(* Both sides derive the same randomness stream and the same new firmware
   from public seeds; only the stream's unpredictability to the *prover in
   advance* matters, which holds per run. *)
let erasure_randomness ~nonce ~size =
  Prng.bytes (Prng.create ~seed:(nonce lxor 0x9053E)) size

let pose_key randomness =
  (* the MAC key is the tail of the streamed randomness: the prover cannot
     know it before the stream has fully arrived *)
  let n = Bytes.length randomness in
  Bytes.sub randomness (max 0 (n - 32)) (min 32 n)

let duration_of_ns f = max 1 (int_of_float (Float.round f))

let malware_pattern = "MALWARE!"

let malware_present memory =
  let probe = Bytes.of_string malware_pattern in
  let snapshot = Memory.snapshot memory in
  let n = Bytes.length snapshot and p = Bytes.length probe in
  let rec scan i =
    i + p <= n && (Bytes.equal (Bytes.sub snapshot i p) probe || scan (i + 1))
  in
  scan 0

let run device config ?(cheat_blocks = []) ~new_seed ~on_done () =
  let eng = device.Device.engine in
  let mem = device.Device.memory in
  let cpu = device.Device.cpu in
  let cost = device.Device.config.Device.cost in
  let size = Memory.size mem in
  let block_size = Memory.block_size mem in
  let blocks = Memory.block_count mem in
  let nonce = Prng.int (Engine.prng eng) ~bound:max_int in
  let randomness = erasure_randomness ~nonce ~size in
  let key = pose_key randomness in
  (* Phase 1: stream randomness in and overwrite memory block by block.
     One CPU job per block covers reception plus the write. Time is charged
     at the *modeled* block size so the flow scales like the attested
     memory, while the actual bytes moved are the simulator's real blocks. *)
  let per_block_ns =
    (config.receive_ns_per_byte +. cost.Cost_model.copy_ns_per_byte)
    *. float_of_int device.Device.config.Device.modeled_block_bytes
  in
  let rec fill block k =
    if block >= blocks then k ()
    else
      ignore
        (Cpu.submit cpu ~name:"erase" ~priority:config.priority
           ~duration:(duration_of_ns per_block_ns)
           ~on_complete:(fun () ->
             if not (List.mem block cheat_blocks) then begin
               let chunk = Bytes.sub randomness (block * block_size) block_size in
               match Memory.set_block mem ~time:(Engine.now eng) ~block chunk with
               | Ok () -> ()
               | Error (Memory.Locked _) -> ()
             end;
             fill (block + 1) k)
           ())
  in
  (* Phase 2: MAC over the whole memory under the randomness-derived key. *)
  let prove k =
    let mac_ns =
      cost.Cost_model.hash_setup_ns
      +. cost.Cost_model.hash_ns_per_byte config.hash
         *. float_of_int (Device.attested_bytes device)
    in
    ignore
      (Cpu.submit cpu ~name:"erase-proof" ~priority:config.priority
         ~duration:(duration_of_ns mac_ns)
         ~on_complete:(fun () ->
           let proof = Ra_crypto.Mac_stream.mac config.hash ~key (Memory.snapshot mem) in
           let expected = Ra_crypto.Mac_stream.mac config.hash ~key randomness in
           k (Ra_crypto.Bytesutil.constant_time_equal proof expected))
         ())
  in
  (* Phase 3: install the new firmware and attest it. *)
  let install_and_attest ~erased_at =
    let firmware = Device.firmware_image ~seed:new_seed ~size in
    let rec install block k =
      if block >= blocks then k ()
      else
        ignore
          (Cpu.submit cpu ~name:"install" ~priority:config.priority
             ~duration:(duration_of_ns per_block_ns)
             ~on_complete:(fun () ->
               let chunk = Bytes.sub firmware (block * block_size) block_size in
               (match Memory.set_block mem ~time:(Engine.now eng) ~block chunk with
               | Ok () -> ()
               | Error (Memory.Locked _) -> ());
               install (block + 1) k)
             ())
    in
    install 0 (fun () ->
        let verifier =
          Verifier.create ~key:device.Device.config.Device.key
            ~expected_image:firmware ~block_size
            ~data_blocks:device.Device.config.Device.data_blocks ~zero_data:false ()
        in
        Mp.run device
          { Mp.default_config with Mp.hash = config.hash; priority = config.priority }
          ~nonce:(Prng.bytes (Engine.prng eng) 16)
          ~on_complete:(fun report ->
            on_done
              {
                erasure_proof_ok = true;
                update_verdict = Verifier.verify verifier report;
                malware_survived = malware_present mem;
                erased_at;
                completed_at = Engine.now eng;
              })
          ())
  in
  Engine.record eng ~tag:"update" "secure erasure starts";
  fill 0 (fun () ->
      prove (fun proof_ok ->
          let erased_at = Engine.now eng in
          Engine.recordf eng ~tag:"update" "erasure proof %s"
            (if proof_ok then "accepted" else "REJECTED");
          if proof_ok then install_and_attest ~erased_at
          else
            on_done
              {
                erasure_proof_ok = false;
                update_verdict = Verifier.Tampered;
                malware_survived = malware_present mem;
                erased_at;
                completed_at = erased_at;
              }))
