open Ra_sim
open Ra_device

type config = {
  seed : int;
  nodes : int;
  fanout : int;
  node_bytes : int;
  modeled_node_bytes : int;
  link_delay : Timebase.t;
  loss : float;
  cost : Cost_model.t;
}

let default_config =
  {
    seed = 1;
    nodes = 31;
    fanout = 2;
    node_bytes = 4096;
    modeled_node_bytes = 1024 * 1024;
    link_delay = Timebase.ms 5;
    loss = 0.;
    cost = Cost_model.odroid_xu4;
  }

type result = {
  healthy : int;
  tampered : int;
  unresponsive : int;
  duration : Timebase.t;
  messages : int;
}

type aggregate = { agg_healthy : int; agg_tampered : int; agg_unresponsive : int }

let children config id =
  let rec collect k acc =
    if k > config.fanout then List.rev acc
    else begin
      let child = (id * config.fanout) + k in
      if child < config.nodes then collect (k + 1) (child :: acc)
      else List.rev acc
    end
  in
  collect 1 []

let rec subtree_size config id =
  1 + List.fold_left (fun acc c -> acc + subtree_size config c) 0 (children config id)

let depth config =
  let rec go id = 1 + List.fold_left (fun acc c -> max acc (go c)) 0 (children config id) in
  go 0

let node_key config id =
  Bytes.of_string (Printf.sprintf "swarm-key-%08x-%04d" config.seed id)

let node_firmware config ~infected id =
  let image =
    Prng.bytes (Prng.create ~seed:(config.seed lxor (id * 7919) lxor 0x53574D)) config.node_bytes
  in
  if List.mem id infected then Bytes.set image 0 '\xEE';
  image

(* Per-node protocol state during a round. *)
type node_state = {
  id : int;
  kids : int list;
  mutable own_digest : Bytes.t option;
  mutable child_aggregates : (int * aggregate) list;
  mutable sent_up : bool;
}

let run config ~infected =
  if config.nodes < 1 then invalid_arg "Swarm.run: empty swarm";
  let eng = Engine.create ~seed:config.seed () in
  let rng = Prng.split (Engine.prng eng) in
  let messages = ref 0 in
  let final = ref None in
  let states =
    Array.init config.nodes (fun id ->
        { id; kids = children config id; own_digest = None; child_aggregates = []; sent_up = false })
  in
  let nonce = Prng.bytes (Engine.prng eng) 16 in
  (* Hash-then-MAC through a per-round content-addressed store: the unkeyed
     firmware digest is shared between a node's own measurement and the
     root's expected value, so each distinct firmware is hashed once per
     round instead of once per side. *)
  let store = Ra_cache.Store.create () in
  (* The clean expected digests for the whole swarm are gathered up front
     through the store's batch entry point: one lock acquisition for the
     round, distinct firmwares hashed by the interleaved kernel. Only an
     infected node's own (tampered) measurement still probes singly. *)
  let clean_digests =
    Array.map snd
      (Ra_cache.Store.digest_many store Ra_crypto.Algo.SHA_256
         (Array.init config.nodes (fun id -> node_firmware config ~infected:[] id)))
  in
  let firmware_digest ~infected id =
    if List.mem id infected then
      snd
        (Ra_cache.Store.digest store Ra_crypto.Algo.SHA_256
           (node_firmware config ~infected id))
    else clean_digests.(id)
  in
  let node_mac ~infected id =
    Ra_crypto.Mac_stream.mac Ra_crypto.Algo.SHA_256 ~key:(node_key config id)
      (Bytes.concat Bytes.empty [ nonce; firmware_digest ~infected id ])
  in
  let expected_digest id = node_mac ~infected:[] id in
  let measure_duration =
    Cost_model.hash_time config.cost Ra_crypto.Algo.SHA_256
      ~bytes:config.modeled_node_bytes
  in
  (* A transmission: counted, delayed, possibly lost. *)
  let transmit callback =
    incr messages;
    if not (Prng.bernoulli rng ~p:config.loss) then
      ignore (Engine.schedule_after eng ~delay:config.link_delay (fun _ -> callback ()))
  in
  (* Each node waits for its children until a depth-scaled timeout, then
     reports whatever it has; silent subtrees count as unresponsive. *)
  let subtree_timeout id =
    let levels = depth { config with nodes = subtree_size config id } in
    Timebase.add measure_duration
      (Timebase.add (config.link_delay * 4 * levels) (measure_duration * levels))
  in
  let rec send_up state =
    if not state.sent_up then begin
      match state.own_digest with
      | None -> ()
      | Some own ->
        state.sent_up <- true;
        let own_healthy =
          Ra_crypto.Bytesutil.constant_time_equal own (expected_digest state.id)
        in
        let base =
          {
            agg_healthy = (if own_healthy then 1 else 0);
            agg_tampered = (if own_healthy then 0 else 1);
            agg_unresponsive = 0;
          }
        in
        let total =
          List.fold_left
            (fun acc child ->
              match List.assoc_opt child state.child_aggregates with
              | Some a ->
                {
                  agg_healthy = acc.agg_healthy + a.agg_healthy;
                  agg_tampered = acc.agg_tampered + a.agg_tampered;
                  agg_unresponsive = acc.agg_unresponsive + a.agg_unresponsive;
                }
              | None ->
                {
                  acc with
                  agg_unresponsive = acc.agg_unresponsive + subtree_size config child;
                })
            base state.kids
        in
        if state.id = 0 then
          transmit (fun () -> final := Some (total, Engine.now eng))
        else begin
          let parent = (state.id - 1) / config.fanout in
          transmit (fun () ->
              let pstate = states.(parent) in
              if not pstate.sent_up then begin
                pstate.child_aggregates <-
                  (state.id, total) :: pstate.child_aggregates;
                if
                  List.length pstate.child_aggregates = List.length pstate.kids
                  && pstate.own_digest <> None
                then send_up pstate
              end)
        end
    end
  in
  let rec receive_challenge id =
    let state = states.(id) in
    List.iter (fun child -> transmit (fun () -> receive_challenge child)) state.kids;
    (* Measure own firmware: real digest over real bytes, model-time cost. *)
    ignore
      (Engine.schedule_after eng ~delay:measure_duration (fun _ ->
           state.own_digest <- Some (node_mac ~infected id);
           if List.length state.child_aggregates = List.length state.kids then
             send_up state));
    ignore
      (Engine.schedule_after eng ~delay:(subtree_timeout id) (fun _ -> send_up state))
  in
  transmit (fun () -> receive_challenge 0);
  Engine.run eng;
  match !final with
  | None ->
    {
      healthy = 0;
      tampered = 0;
      unresponsive = config.nodes;
      duration = Engine.now eng;
      messages = !messages;
    }
  | Some (agg, finished) ->
    {
      healthy = agg.agg_healthy;
      tampered = agg.agg_tampered;
      unresponsive = agg.agg_unresponsive;
      duration = finished;
      messages = !messages;
    }
