(** Per-device health state machine.

    The supervisor's view of one device, driven by roll-call outcomes,
    ERASMUS gap audits and report timeouts:

    {v
                 timeout/gap            breaker opens
      Healthy -------------> Suspect ----------------> Unreachable
         |  ^                  |  ^                     |   |
         |  | clean            |  | clean (probe)       |   | probes
         |  +------------------+  +---------------------+   | exhausted
         |                     |                            v
         |  tampered           | tampered             Quarantined <---+
         +---------------------+--------------------->     |          |
         (via Compromised: isolate on the next round)      | update   |
                                                           v pushed   |
                                                      Remediating ----+
                                                           | update    (failed)
                                                           v verified
         Healthy <------------ Probation <----------------+
                  N clean rounds
    v}

    Every move goes through {!apply}, which consults the declared {!edges}
    relation: a cause that has no edge from the current state is absorbed
    (the machine stays put and records nothing), so by construction the
    recorded {!history} never contains an undeclared transition — the
    qcheck legality property in [test/test_supervisor.ml] pins this. *)

type state =
  | Healthy
  | Suspect  (** missed a report or showed a log gap; next outcome decides *)
  | Unreachable  (** circuit breaker open: only backoff-spaced probes *)
  | Compromised  (** failed verification; isolation pending *)
  | Quarantined  (** isolated, with a recorded reason; exits only via remediation *)
  | Remediating  (** secure erase + code update in flight *)
  | Probation  (** remediated; must produce clean full measurements to re-admit *)

type cause =
  | Verified_clean  (** a clean full measurement (roll call or probe) *)
  | Verdict_tampered  (** measurement verified as tampered *)
  | Report_timeout  (** no verifiable report within the session budget *)
  | Gap_audit  (** ERASMUS log audit showed a counter gap beyond allowance *)
  | Breaker_open  (** consecutive failures crossed the breaker threshold *)
  | Probe_exhausted  (** every half-open probe failed; device written off *)
  | Flapping  (** too many transitions: quarantined to stop the churn *)
  | Isolated  (** supervisor quarantines a compromised device *)
  | Update_pushed  (** remediation begins: secure erase + code update *)
  | Update_verified  (** erasure proof + post-install attestation clean *)
  | Update_failed  (** erasure proof rejected, verdict tampered, or hang *)
  | Probation_passed  (** required consecutive clean probation rounds seen *)
  | Probation_failed  (** tampered (or worse) while on probation *)

val state_to_string : state -> string
val cause_to_string : cause -> string

val edges : (state * cause * state) list
(** The complete legal-transition relation. *)

val legal : state -> cause -> state option
(** [legal s c] is the destination state, or [None] when [c] is absorbed
    in [s]. *)

type transition = {
  round : int;
  from_ : state;
  cause : cause;
  to_ : state;
}

type t

val create : unit -> t
(** A fresh machine in [Healthy]. *)

val state : t -> state

val apply : t -> round:int -> cause -> state
(** Feed one cause. Moves along the declared edge when there is one
    (recording the transition), otherwise absorbs the cause silently.
    Returns the (possibly unchanged) state. *)

val history : t -> transition list
(** All recorded transitions, oldest first. *)

val transitions : t -> int
(** Number of recorded transitions (the flap-damping input). *)

val quarantine_reason : t -> cause option
(** The cause of the most recent entry into [Quarantined], if any. *)

val entered_compromised_at : t -> int option
(** Round of the first transition into [Compromised] — the detection
    instant the QoA bound is checked against. *)

val restore : t -> transition list -> (unit, string) result
(** Overwrite the machine from a recorded history (oldest first),
    validating every step against {!edges} from [Healthy]. An illegal or
    discontinuous history is rejected and the machine is left untouched
    — recovery can never materialize an undeclared transition. *)
