(** Per-device circuit breaker.

    A device that stops answering must not keep consuming verifier attempts
    every round: after [failure_threshold] consecutive failures the breaker
    opens and the device is only probed again after a cooldown that grows
    exponentially with each failed probe (jittered so a partition's worth of
    breakers does not thunder back in lockstep). A successful probe closes
    the breaker and resets everything; [max_probes] failed half-open probes
    in a row mark the breaker exhausted — the supervisor's cue to stop
    trying and quarantine the device as unreachable.

    The cooldown floor rides the session's {!Ra_core.Rtt} estimator:
    [cooldown >= rto_factor * RTO], so a slow-but-alive link earns
    proportionally patient probing without any extra configuration.

    Monotonicity contract (qcheck-pinned): while the breaker is open,
    {!allow} never returns [true] before the recorded {!deadline}. *)

open Ra_sim

type config = {
  failure_threshold : int;
      (** consecutive failures that open a closed breaker *)
  base_cooldown : Timebase.t;  (** floor of the first open window *)
  rto_factor : float;
      (** the cooldown floor also tracks [rto_factor * rto_hint] *)
  backoff : float;  (** cooldown growth per consecutive failed probe *)
  max_cooldown : Timebase.t;  (** cooldown ceiling *)
  jitter : float;
      (** each cooldown is scaled by a factor uniform in
          [[1, 1 + jitter]] — spreads probe times across a fleet *)
  max_probes : int;
      (** failed half-open probes before the breaker is {!exhausted} *)
}

val default_config : config
(** threshold 2, base 30 s, rto_factor 8, backoff 1.5x up to 90 s,
    jitter 0.25, 3 probes. *)

type phase = Closed | Open | Half_open

type t

val create : ?config:config -> rng:Prng.t -> unit -> t
(** [rng] drives only the jitter; give each device its own split stream so
    fleets stay deterministic under parallel supervision. *)

val phase : t -> phase

val allow : t -> now:Timebase.t -> bool
(** May the supervisor attempt an exchange now? [Closed]: always. [Open]:
    only once [now] reaches the deadline, which moves the breaker to
    [Half_open] (the probe). [Half_open] with the probe outstanding:
    no. Never [true] before the deadline. *)

val record_success : t -> unit
(** The attempt produced a verifiable report: close, clear failures and
    probe budget. *)

val record_failure : t -> now:Timebase.t -> rto_hint:Timebase.t -> unit
(** The attempt timed out. Counts toward the threshold; opens (or re-opens,
    with the next backoff step) as configured. [rto_hint] is the session's
    current RTO (see {!Ra_core.Rtt.rto}). *)

val deadline : t -> Timebase.t option
(** Next instant a probe may go out ([Open] only). *)

val exhausted : t -> bool
(** [max_probes] half-open probes failed with no success in between. *)

val consecutive_failures : t -> int

val opens : t -> int
(** Times the breaker opened (including re-opens after failed probes). *)

val probes : t -> int
(** Half-open probes attempted so far in the current outage. *)

val phase_to_string : phase -> string

val save : t -> Bytes.t
(** Serialize phase, deadline, counters and the full jitter-PRNG state;
    the config is rebuilt by the owner. A restored breaker draws the
    same cooldown jitter the crashed one would have — a replay
    requirement, not a nicety. *)

val restore : t -> Bytes.t -> (unit, string) result
(** Overwrite the breaker state in place from a {!save} image. *)
