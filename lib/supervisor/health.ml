type state =
  | Healthy
  | Suspect
  | Unreachable
  | Compromised
  | Quarantined
  | Remediating
  | Probation

type cause =
  | Verified_clean
  | Verdict_tampered
  | Report_timeout
  | Gap_audit
  | Breaker_open
  | Probe_exhausted
  | Flapping
  | Isolated
  | Update_pushed
  | Update_verified
  | Update_failed
  | Probation_passed
  | Probation_failed

let state_to_string = function
  | Healthy -> "healthy"
  | Suspect -> "suspect"
  | Unreachable -> "unreachable"
  | Compromised -> "compromised"
  | Quarantined -> "quarantined"
  | Remediating -> "remediating"
  | Probation -> "probation"

let cause_to_string = function
  | Verified_clean -> "verified-clean"
  | Verdict_tampered -> "verdict-tampered"
  | Report_timeout -> "report-timeout"
  | Gap_audit -> "gap-audit"
  | Breaker_open -> "breaker-open"
  | Probe_exhausted -> "probe-exhausted"
  | Flapping -> "flapping"
  | Isolated -> "isolated"
  | Update_pushed -> "update-pushed"
  | Update_verified -> "update-verified"
  | Update_failed -> "update-failed"
  | Probation_passed -> "probation-passed"
  | Probation_failed -> "probation-failed"

(* The whole legal relation, written out rather than computed, so a review
   (and the legality property test) can read the machine off this list. *)
let edges =
  [
    (Healthy, Report_timeout, Suspect);
    (Healthy, Gap_audit, Suspect);
    (Healthy, Verdict_tampered, Compromised);
    (Healthy, Flapping, Quarantined);
    (Suspect, Verified_clean, Healthy);
    (Suspect, Verdict_tampered, Compromised);
    (Suspect, Breaker_open, Unreachable);
    (Suspect, Flapping, Quarantined);
    (Unreachable, Verified_clean, Healthy);
    (Unreachable, Verdict_tampered, Compromised);
    (Unreachable, Probe_exhausted, Quarantined);
    (Unreachable, Flapping, Quarantined);
    (Compromised, Isolated, Quarantined);
    (Quarantined, Update_pushed, Remediating);
    (Remediating, Update_verified, Probation);
    (Remediating, Update_failed, Quarantined);
    (Probation, Probation_passed, Healthy);
    (Probation, Verdict_tampered, Quarantined);
    (Probation, Probation_failed, Quarantined);
    (Probation, Breaker_open, Unreachable);
    (Probation, Flapping, Quarantined);
  ]

let legal s c =
  List.find_map
    (fun (from_, cause, to_) -> if from_ = s && cause = c then Some to_ else None)
    edges

type transition = {
  round : int;
  from_ : state;
  cause : cause;
  to_ : state;
}

type t = {
  mutable current : state;
  mutable log : transition list; (* newest first *)
  mutable count : int;
}

let create () = { current = Healthy; log = []; count = 0 }

let state t = t.current

let apply t ~round cause =
  (match legal t.current cause with
  | None -> ()
  | Some to_ ->
    t.log <- { round; from_ = t.current; cause; to_ } :: t.log;
    t.count <- t.count + 1;
    t.current <- to_);
  t.current

let history t = List.rev t.log

let transitions t = t.count

let quarantine_reason t =
  List.find_map
    (fun tr -> if tr.to_ = Quarantined then Some tr.cause else None)
    t.log

let entered_compromised_at t =
  List.find_map
    (fun tr -> if tr.to_ = Compromised then Some tr.round else None)
    (List.rev t.log)

(* Crash recovery: rebuild a machine from a recorded history, accepting
   only transitions the edges relation declares. This is the gate that
   makes "recovery never yields an illegal Health edge" structural — a
   corrupted or hand-edited journal fails here instead of producing a
   machine that could never have existed. *)
let restore t hist =
  let fresh = create () in
  let rec feed prev = function
    | [] -> Ok ()
    | tr :: rest ->
        if tr.from_ <> prev then
          Error
            (Printf.sprintf "health history break: %s -> %s"
               (state_to_string prev)
               (state_to_string tr.from_))
        else begin
          match legal tr.from_ tr.cause with
          | Some to_ when to_ = tr.to_ ->
              ignore (apply fresh ~round:tr.round tr.cause);
              feed to_ rest
          | _ ->
              Error
                (Printf.sprintf "illegal health edge: %s --%s--> %s"
                   (state_to_string tr.from_)
                   (cause_to_string tr.cause)
                   (state_to_string tr.to_))
        end
  in
  match feed Healthy hist with
  | Error _ as e -> e
  | Ok () ->
      t.current <- fresh.current;
      t.log <- fresh.log;
      t.count <- fresh.count;
      Ok ()
