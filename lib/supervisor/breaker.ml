open Ra_sim

type config = {
  failure_threshold : int;
  base_cooldown : Timebase.t;
  rto_factor : float;
  backoff : float;
  max_cooldown : Timebase.t;
  jitter : float;
  max_probes : int;
}

let default_config =
  {
    failure_threshold = 2;
    base_cooldown = Timebase.s 30;
    rto_factor = 8.;
    backoff = 1.5;
    max_cooldown = Timebase.s 90;
    jitter = 0.25;
    max_probes = 3;
  }

type phase = Closed | Open | Half_open

type t = {
  config : config;
  rng : Prng.t;
  mutable phase : phase;
  mutable deadline : Timebase.t; (* meaningful while Open *)
  mutable failures : int; (* consecutive *)
  mutable probe_count : int; (* failed probes this outage *)
  mutable open_count : int;
}

let create ?(config = default_config) ~rng () =
  if config.failure_threshold < 1 then invalid_arg "Breaker: threshold < 1";
  if config.backoff < 1.0 then invalid_arg "Breaker: backoff < 1";
  if config.jitter < 0.0 then invalid_arg "Breaker: negative jitter";
  if config.max_probes < 1 then invalid_arg "Breaker: max_probes < 1";
  {
    config;
    rng;
    phase = Closed;
    deadline = Timebase.zero;
    failures = 0;
    probe_count = 0;
    open_count = 0;
  }

let phase t = t.phase

let cooldown t ~rto_hint =
  let c = t.config in
  let floor_ = max c.base_cooldown (int_of_float (c.rto_factor *. float_of_int rto_hint)) in
  let grown = float_of_int floor_ *. (c.backoff ** float_of_int t.probe_count) in
  let jittered = grown *. (1. +. (c.jitter *. Prng.float t.rng)) in
  min c.max_cooldown (max 1 (int_of_float (Float.round jittered)))

let allow t ~now =
  match t.phase with
  | Closed -> true
  | Half_open -> false (* one probe at a time *)
  | Open ->
    if now >= t.deadline then begin
      t.phase <- Half_open;
      t.probe_count <- t.probe_count + 1;
      true
    end
    else false

let record_success t =
  t.phase <- Closed;
  t.failures <- 0;
  t.probe_count <- 0

let open_ t ~now ~rto_hint =
  t.phase <- Open;
  t.open_count <- t.open_count + 1;
  t.deadline <- Timebase.add now (cooldown t ~rto_hint)

let record_failure t ~now ~rto_hint =
  t.failures <- t.failures + 1;
  match t.phase with
  | Half_open -> open_ t ~now ~rto_hint (* failed probe: back off further *)
  | Closed -> if t.failures >= t.config.failure_threshold then open_ t ~now ~rto_hint
  | Open -> () (* no attempt should have been made; keep the deadline *)

let deadline t = match t.phase with Open -> Some t.deadline | _ -> None

let exhausted t =
  t.phase <> Closed && t.probe_count >= t.config.max_probes

let consecutive_failures t = t.failures

let opens t = t.open_count

let probes t = t.probe_count

let phase_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

(* Save/restore for crash recovery: the mutable counters plus the full
   PRNG state, so a restored breaker draws the same jitter stream the
   crashed one would have. The config is rebuilt by the owner. *)
let save t =
  let module C = Ra_journal.Codec in
  let w = C.writer () in
  C.u8 w (match t.phase with Closed -> 0 | Open -> 1 | Half_open -> 2);
  C.i64 w t.deadline;
  C.i64 w t.failures;
  C.i64 w t.probe_count;
  C.i64 w t.open_count;
  C.bytes w (Prng.to_bytes t.rng);
  C.contents w

let restore t b =
  let module C = Ra_journal.Codec in
  match
    let r = C.reader b in
    let phase =
      match C.read_u8 r with
      | 0 -> Closed
      | 1 -> Open
      | 2 -> Half_open
      | p -> C.fail (Printf.sprintf "unknown breaker phase %d" p)
    in
    let deadline = C.read_i64 r in
    let failures = C.read_i64 r in
    let probe_count = C.read_i64 r in
    let open_count = C.read_i64 r in
    let rng = C.read_bytes r in
    C.expect_end r;
    (phase, deadline, failures, probe_count, open_count, rng)
  with
  | phase, deadline, failures, probe_count, open_count, rng ->
      if failures < 0 || probe_count < 0 || open_count < 0 then
        Error "Breaker.restore: negative counter"
      else begin
        match Prng.set_bytes t.rng rng with
        | () ->
            t.phase <- phase;
            t.deadline <- deadline;
            t.failures <- failures;
            t.probe_count <- probe_count;
            t.open_count <- open_count;
            Ok ()
        | exception Invalid_argument msg -> Error ("Breaker.restore: " ^ msg)
      end
  | exception Ra_journal.Codec.Corrupt msg -> Error ("Breaker.restore: " ^ msg)
