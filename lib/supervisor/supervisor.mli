(** Fleet supervisor: closes the loop from detection to remediation.

    PR 3's {!Ra_core.Fleet} measures; this module decides. Each enrolled
    device gets a {!Health} state machine, a {!Breaker} and an
    {!Ra_core.Rtt} estimator, and supervision proceeds in deterministic
    rounds of [round_budget] virtual time each:

    + {e plan} (sequential, roster order): pick each device's action from
      its health state and breaker — attest, probe, isolate, remediate, or
      idle;
    + {e execute} (fans out over the {!Ra_parallel} pool): each device runs
      its own engine forward one round budget, carrying its session
      ({!Ra_core.Reliable_protocol}) or remediation
      ({!Ra_core.Code_update}) with it. Devices are independent
      simulations, so results are a pure function of per-device state;
    + {e apply} (sequential, roster order): feed outcomes to the state
      machines and breakers.

    Randomness (breaker jitter, protocol nonces) comes from per-device
    streams split before any fan-out, so every count in the {!report} is
    bit-identical for any [jobs] value.

    Remediation pipeline: a device that fails verification becomes
    [Compromised], is isolated to [Quarantined] on the next plan phase,
    then — while quarantine budget remains — gets a secure-erase +
    code-update push ({!Ra_core.Code_update} reinstalling the fleet
    release). A verified update moves it to [Probation]; only
    [probation_rounds] consecutive clean full measurements re-admit it to
    [Healthy]. Devices whose breaker runs out of probes (persistent
    partition, crash loop) are quarantined as unreachable and left for the
    operator. *)

open Ra_sim

type config = {
  mp : Ra_core.Mp.config;  (** measurement scheme for roll calls/probes *)
  update : Ra_core.Code_update.config;  (** remediation push parameters *)
  breaker : Breaker.config;
  round_budget : Timebase.t;
      (** virtual time per supervision round — the collection period T_C *)
  session_attempts : int;  (** retransmissions per attestation session *)
  session_max_timeout : Timebase.t;  (** RTO ceiling within a session *)
  net_delay : Timebase.t;  (** base one-way latency of the default channel *)
  probation_rounds : int;  (** consecutive clean rounds to re-admit *)
  remediation_attempts : int;  (** update pushes before giving up *)
  flap_threshold : int;
      (** recorded transitions before a device is quarantined as flapping *)
  gap_allowance : int;
      (** ERASMUS counter-gap width tolerated before a gap audit demotes a
          device to [Suspect] *)
}

val default_config : config
(** SMART MP, 30 s rounds, 8 attempts/session, 2 probation rounds,
    2 remediation attempts, flap threshold 12, gap allowance 1. *)

type outcome = Clean | Tampered | Timeout

type t

val create : ?config:config -> ?journal:Ra_journal.Journal.t -> Ra_core.Fleet.t -> t
(** Supervise every device currently enrolled in the fleet (all start
    [Healthy]). Devices provisioned later are not picked up.

    With [journal], every state change is journaled {e before} it is
    applied: health edges, breaker transitions, attestation outcomes,
    detections and remediation pushes as they happen (sequential plan and
    apply phases, roster order — never from the parallel execute phase,
    so the record stream is bit-identical for any [jobs] value); at each
    round boundary, per-device state deltas and a "round-end" record with
    the globals, the state digest and the shared digest-store counters,
    followed by a commit ([fsync]) — the round is the acknowledgement
    unit. The journal may also be a {!Ra_journal.Journal.verifier}, in
    which case the same emission path {e checks} a recorded campaign
    instead of writing one. *)

val attach_journal : t -> Ra_journal.Journal.t -> unit
(** Switch journals mid-life (used by crash recovery to go from a verify
    journal over the recorded prefix to a resumed recording journal).
    Re-baselines delta tracking at the attach point. *)

val converged : t -> bool

val set_channel : t -> Ra_core.Fleet.device_id -> Channel.config -> unit
(** Override the verifier-prover channel for one device (loss, corruption,
    partition windows in the device's own timeline). Takes effect from the
    next session. Raises [Not_found] for unknown ids. *)

val health : t -> Ra_core.Fleet.device_id -> Health.state
val machine : t -> Ra_core.Fleet.device_id -> Health.t
val breaker : t -> Ra_core.Fleet.device_id -> Breaker.t

val note_gap_audit : t -> Ra_core.Fleet.device_id -> Ra_core.Erasmus.audit -> unit
(** Feed an ERASMUS collection audit: a counter gap wider than
    [gap_allowance] (or any tampered stored report) counts as evidence
    against the device — gaps demote [Healthy] to [Suspect], tampered
    stored reports are a [Verdict_tampered]. *)

val rounds_run : t -> int

val round : ?jobs:int -> ?shards:int -> t -> unit
(** One supervision round (plan / execute / apply). [shards] groups the
    parallel execute phase into that many contiguous roster chunks (one
    pool task each) rather than one task per device; results, counters
    and the journal stream are bit-identical for any value. *)

type report = {
  rounds : int;
  converged : bool;
      (** every device [Healthy] or [Quarantined], and the last round saw
          no transition, timeout, or pending remediation *)
  healthy : Ra_core.Fleet.device_id list;
  quarantined : (Ra_core.Fleet.device_id * Health.cause) list;
      (** terminal devices with the recorded reason they were isolated *)
  unsettled : Ra_core.Fleet.device_id list;
      (** devices still mid-pipeline when the run stopped *)
  detections : (Ra_core.Fleet.device_id * int) list;
      (** first round each device was verified tampered *)
  remediated : Ra_core.Fleet.device_id list;
      (** devices whose update push was verified (they entered probation) *)
  attestations : int;  (** sessions actually started *)
  timeouts : int;  (** sessions ending without a verifiable report *)
  probes_blocked : int;  (** attempts skipped because a breaker was open *)
  remediation_pushes : int;
  transition_counts : ((Health.state * Health.cause * Health.state) * int) list;
      (** sorted; aggregated over every device's history *)
  counter_digest : string;
      (** stable one-line rendering of every counter above — byte-equal
          across runs iff the supervision behaved identically (the
          jobs-invariance check compares these) *)
}

val run :
  ?jobs:int -> ?shards:int -> ?min_rounds:int -> ?max_rounds:int -> t -> report
(** Rounds until convergence or [max_rounds] (default 24). [min_rounds]
    (default 0) keeps supervising through early quiet rounds — a fleet
    whose faults are scheduled for later virtual time looks converged
    until they land, so callers that armed such faults should set a floor
    past the last scheduled instant. *)

val report : t -> report
(** The report for the rounds run so far. *)

(** {1 Durable state}

    The supervisor's complete mutable state — health machines with full
    histories, breaker phases and jitter-PRNG streams, RTT estimators
    bit-exact, per-device scalars and the global counters — serializes to
    a deterministic byte image. Two supervisors over the same fleet are
    behaviourally identical iff their images are [Bytes.equal]; that is
    the property crash recovery leans on. *)

val serialize : t -> Bytes.t

val load : t -> Bytes.t -> (unit, string) result
(** Overwrite this supervisor's state from a {!serialize} image taken
    over the same roster. Every recovered health history is re-validated
    against {!Health.edges} — a corrupted image is rejected, never
    half-applied into an illegal machine. *)

val state_digest : t -> string
(** CRC-32 of {!serialize}, rendered as 8 hex digits. *)

(** Rebuilding state from a recovered journal without re-executing it. *)
module Recovery : sig
  val completed_rounds : Ra_journal.Event.t array -> int * int
  (** [(rounds, keep)]: the number of completed rounds in the event
      stream and the event count up to (including) the last "round-end"
      record — the consistency point a resume truncates to. Records past
      it belong to a round whose commit never happened. *)

  val reconstruct :
    base:Bytes.t ->
    after:int ->
    Ra_journal.Event.t array ->
    (Bytes.t, string) result
  (** Overlay the "dstate" and "round-end" records following event index
      [after] onto the [base] state image (a snapshot, or the round-0
      serialization) and return the resulting image. Pure data — no
      simulation is executed; feed the result to {!load}. *)
end
