open Ra_sim
open Ra_device
open Ra_core

type config = {
  mp : Mp.config;
  update : Code_update.config;
  breaker : Breaker.config;
  round_budget : Timebase.t;
  session_attempts : int;
  session_max_timeout : Timebase.t;
  net_delay : Timebase.t;
  probation_rounds : int;
  remediation_attempts : int;
  flap_threshold : int;
  gap_allowance : int;
}

let default_config =
  {
    mp = Mp.default_config;
    update = Code_update.default_config;
    breaker = Breaker.default_config;
    round_budget = Timebase.s 30;
    session_attempts = 8;
    session_max_timeout = Timebase.s 4;
    net_delay = Timebase.ms 40;
    probation_rounds = 2;
    remediation_attempts = 2;
    flap_threshold = 12;
    gap_allowance = 1;
  }

type outcome = Clean | Tampered | Timeout

type dsup = {
  id : Fleet.device_id;
  device : Device.t;
  verifier : Verifier.t;
  machine : Health.t;
  brk : Breaker.t;
  rtt : Rtt.t;
  mutable channel : Channel.config;
  mutable local_deadline : Timebase.t; (* device time the next round runs to *)
  mutable probation_clean : int;
  mutable remediations : int;
  mutable remediated : bool; (* some update push was verified *)
  mutable detected_round : int option;
  mutable pending_gap : bool;
  mutable pending_tampered : bool;
}

type t = {
  config : config;
  roster : dsup array; (* enrolment order *)
  by_id : (Fleet.device_id, dsup) Hashtbl.t;
  mutable round_no : int;
  mutable converged : bool;
  mutable attestations : int;
  mutable timeouts : int;
  mutable probes_blocked : int;
  mutable remediation_pushes : int;
}

let create ?(config = default_config) fleet =
  (* Fleet devices all run the same release, so their engines share a PRNG
     seed; jitter drawn from them would be identical fleet-wide. Split each
     breaker's stream from one supervisor root instead — sequentially, in
     roster order, before any fan-out, so streams are decorrelated across
     devices yet bit-identical across runs and [jobs] values. *)
  let jitter_root = Prng.create ~seed:0x5c0bb1e in
  let roster =
    Array.of_list
      (List.map
         (fun id ->
           let device = Fleet.device fleet id in
           let rng = Prng.split jitter_root in
           {
             id;
             device;
             verifier = Verifier.of_device device;
             machine = Health.create ();
             brk = Breaker.create ~config:config.breaker ~rng ();
             rtt =
               Rtt.create ~initial_rto:(Timebase.s 1) ~min_rto:(Timebase.ms 50)
                 ~max_rto:config.session_max_timeout ();
             channel = { Channel.ideal with Channel.delay = config.net_delay };
             local_deadline = Engine.now device.Device.engine;
             probation_clean = 0;
             remediations = 0;
             remediated = false;
             detected_round = None;
             pending_gap = false;
             pending_tampered = false;
           })
         (Fleet.enrolled fleet))
  in
  let by_id = Hashtbl.create (Array.length roster) in
  Array.iter (fun d -> Hashtbl.replace by_id d.id d) roster;
  {
    config;
    roster;
    by_id;
    round_no = 0;
    converged = false;
    attestations = 0;
    timeouts = 0;
    probes_blocked = 0;
    remediation_pushes = 0;
  }

let find t id =
  match Hashtbl.find_opt t.by_id id with
  | Some d -> d
  | None -> raise Not_found

let set_channel t id channel = (find t id).channel <- channel

let health t id = Health.state (find t id).machine

let machine t id = (find t id).machine

let breaker t id = (find t id).brk

let note_gap_audit t id audit =
  let d = find t id in
  if audit.Erasmus.audit_tampered > 0 then d.pending_tampered <- true;
  let gap_width =
    List.fold_left (fun a (lo, hi) -> a + hi - lo + 1) 0 audit.Erasmus.gaps
  in
  if gap_width > t.config.gap_allowance then d.pending_gap <- true;
  (* fresh external evidence re-opens a converged fleet *)
  if d.pending_tampered || d.pending_gap then t.converged <- false

let rounds_run t = t.round_no

(* A quarantined device is worth a(nother) update push only when it got
   there through verification evidence — an unreachable or flapping device
   cannot be reflashed over a link that does not answer. *)
let remediable t d =
  Health.state d.machine = Health.Quarantined
  && d.remediations < t.config.remediation_attempts
  && (match Health.quarantine_reason d.machine with
     | Some (Health.Isolated | Health.Update_failed | Health.Probation_failed
            | Health.Verdict_tampered) ->
       true
     | Some _ | None -> false)

let settled t d =
  match Health.state d.machine with
  | Health.Healthy -> true
  | Health.Quarantined -> not (remediable t d)
  | _ -> false

(* --- round phases -------------------------------------------------------- *)

type action = Advance | Attest | Remediate

type exec_result =
  | Nothing
  | Session of Reliable_protocol.result option
  | Remediation of Code_update.outcome option

let plan t d =
  let round = t.round_no in
  let apply c = ignore (Health.apply d.machine ~round c) in
  (* externally supplied evidence (ERASMUS collection audits) first *)
  if d.pending_tampered then begin
    d.pending_tampered <- false;
    d.pending_gap <- false;
    if d.detected_round = None then d.detected_round <- Some round;
    apply Health.Verdict_tampered
  end;
  if d.pending_gap then begin
    d.pending_gap <- false;
    apply Health.Gap_audit
  end;
  (* flap damping: a device that keeps churning through states gets
     quarantined rather than looping forever — the no-livelock backstop *)
  if
    Health.transitions d.machine >= t.config.flap_threshold
    && Health.state d.machine <> Health.Quarantined
  then apply Health.Flapping;
  let now = Engine.now d.device.Device.engine in
  match Health.state d.machine with
  | Health.Compromised ->
    apply Health.Isolated;
    Advance
  | Health.Quarantined -> if remediable t d then Remediate else Advance
  | Health.Remediating ->
    (* defensive: remediation resolves within its round *)
    Advance
  | Health.Unreachable ->
    if Breaker.exhausted d.brk then begin
      apply Health.Probe_exhausted;
      Advance
    end
    else if Breaker.allow d.brk ~now then Attest
    else begin
      t.probes_blocked <- t.probes_blocked + 1;
      Advance
    end
  | Health.Healthy | Health.Suspect | Health.Probation ->
    if Breaker.allow d.brk ~now then Attest
    else begin
      t.probes_blocked <- t.probes_blocked + 1;
      Advance
    end

let session_config t d =
  {
    Reliable_protocol.mp = t.config.mp;
    channel = d.channel;
    auth_time = Timebase.us 200;
    retry_timeout = Timebase.s 1;
    max_attempts = t.config.session_attempts;
    backoff = 1.6;
    backoff_jitter = 0.1;
    max_timeout = t.config.session_max_timeout;
  }

(* Everything here touches only [d]'s own simulation (plus the fleet's
   mutex-guarded digest store), so it is safe — and deterministic — to run
   from any pool domain. *)
let execute t d action =
  d.local_deadline <- Timebase.add d.local_deadline t.config.round_budget;
  match action with
  | Advance ->
    Device.run ~until:d.local_deadline d.device;
    Nothing
  | Attest ->
    let result = ref None in
    Reliable_protocol.run d.device d.verifier (session_config t d) ~rtt:d.rtt
      ~on_done:(fun r -> result := Some r)
      ();
    Device.run ~until:d.local_deadline d.device;
    Session !result
  | Remediate ->
    let out = ref None in
    Code_update.run d.device t.config.update
      ~new_seed:d.device.Device.config.Device.seed
      ~on_done:(fun o -> out := Some o)
      ();
    Device.run ~until:d.local_deadline d.device;
    Remediation !out

let outcome_of_session = function
  | Some { Reliable_protocol.verdict = Some Verifier.Clean; _ } -> Clean
  | Some { Reliable_protocol.verdict = Some Verifier.Tampered; _ } -> Tampered
  | Some { Reliable_protocol.verdict = None; _ } | None -> Timeout

let apply_result t d result =
  let round = t.round_no in
  let apply c = ignore (Health.apply d.machine ~round c) in
  match result with
  | Nothing -> ()
  | Session r ->
    t.attestations <- t.attestations + 1;
    (match outcome_of_session r with
    | Clean ->
      Breaker.record_success d.brk;
      (match Health.state d.machine with
      | Health.Probation ->
        d.probation_clean <- d.probation_clean + 1;
        if d.probation_clean >= t.config.probation_rounds then
          apply Health.Probation_passed
      | _ -> apply Health.Verified_clean)
    | Tampered ->
      Breaker.record_success d.brk;
      if d.detected_round = None then d.detected_round <- Some round;
      apply Health.Verdict_tampered
    | Timeout ->
      t.timeouts <- t.timeouts + 1;
      Breaker.record_failure d.brk
        ~now:(Engine.now d.device.Device.engine)
        ~rto_hint:(Rtt.rto d.rtt);
      apply Health.Report_timeout;
      if Breaker.phase d.brk = Breaker.Open then apply Health.Breaker_open)
  | Remediation out ->
    t.remediation_pushes <- t.remediation_pushes + 1;
    d.remediations <- d.remediations + 1;
    apply Health.Update_pushed;
    (match out with
    | Some o
      when o.Code_update.erasure_proof_ok
           && o.Code_update.update_verdict = Verifier.Clean
           && not o.Code_update.malware_survived ->
      d.probation_clean <- 0;
      d.remediated <- true;
      apply Health.Update_verified
    | Some _ | None -> apply Health.Update_failed)

let total_transitions t =
  Array.fold_left (fun acc d -> acc + Health.transitions d.machine) 0 t.roster

let round ?jobs t =
  let transitions0 = total_transitions t in
  let timeouts0 = t.timeouts in
  let actions = Array.map (fun d -> plan t d) t.roster in
  let results =
    Ra_parallel.parallel_init ?jobs (Array.length t.roster) (fun i ->
        execute t t.roster.(i) actions.(i))
  in
  Array.iteri (fun i d -> apply_result t d results.(i)) t.roster;
  t.round_no <- t.round_no + 1;
  t.converged <-
    Array.for_all (fun d -> settled t d) t.roster
    && total_transitions t = transitions0
    && t.timeouts = timeouts0

(* --- report -------------------------------------------------------------- *)

type report = {
  rounds : int;
  converged : bool;
  healthy : Fleet.device_id list;
  quarantined : (Fleet.device_id * Health.cause) list;
  unsettled : Fleet.device_id list;
  detections : (Fleet.device_id * int) list;
  remediated : Fleet.device_id list;
  attestations : int;
  timeouts : int;
  probes_blocked : int;
  remediation_pushes : int;
  transition_counts : ((Health.state * Health.cause * Health.state) * int) list;
  counter_digest : string;
}

let report t =
  let healthy = ref [] and quarantined = ref [] and unsettled = ref [] in
  let detections = ref [] and remediated = ref [] in
  let counts = Hashtbl.create 32 in
  Array.iter
    (fun d ->
      (match Health.state d.machine with
      | Health.Healthy -> healthy := d.id :: !healthy
      | Health.Quarantined ->
        let reason =
          Option.value ~default:Health.Isolated (Health.quarantine_reason d.machine)
        in
        quarantined := (d.id, reason) :: !quarantined
      | _ -> unsettled := d.id :: !unsettled);
      (match d.detected_round with
      | Some r -> detections := (d.id, r) :: !detections
      | None -> ());
      if d.remediated then remediated := d.id :: !remediated;
      List.iter
        (fun tr ->
          let key = (tr.Health.from_, tr.Health.cause, tr.Health.to_) in
          Hashtbl.replace counts key
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
        (Health.history d.machine))
    t.roster;
  (* The digest below concatenates these edges in list order, so bucket
     order must never escape the fold: sort at the fold site (ralint rule
     D3 enforces exactly this shape — fold directly under an explicit
     sort), keyed on the rendered names for a stable, readable order. *)
  let transition_counts =
    List.sort
      (fun ((f1, c1, t1), _) ((f2, c2, t2), _) ->
        compare
          ( Health.state_to_string f1,
            Health.cause_to_string c1,
            Health.state_to_string t1 )
          ( Health.state_to_string f2,
            Health.cause_to_string c2,
            Health.state_to_string t2 ))
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [])
  in
  let digest =
    let edges =
      String.concat ";"
        (List.map
           (fun ((f, c, to_), n) ->
             Printf.sprintf "%s>%s/%s=%d" (Health.state_to_string f)
               (Health.state_to_string to_) (Health.cause_to_string c) n)
           transition_counts)
    in
    Printf.sprintf
      "rounds=%d converged=%b healthy=%d quarantined=%d unsettled=%d \
       detections=%d remediated=%d attested=%d timeouts=%d blocked=%d \
       pushes=%d edges[%s]"
      t.round_no t.converged (List.length !healthy) (List.length !quarantined)
      (List.length !unsettled) (List.length !detections)
      (List.length !remediated) t.attestations t.timeouts t.probes_blocked
      t.remediation_pushes edges
  in
  {
    rounds = t.round_no;
    converged = t.converged;
    healthy = List.rev !healthy;
    quarantined = List.rev !quarantined;
    unsettled = List.rev !unsettled;
    detections = List.rev !detections;
    remediated = List.rev !remediated;
    attestations = t.attestations;
    timeouts = t.timeouts;
    probes_blocked = t.probes_blocked;
    remediation_pushes = t.remediation_pushes;
    transition_counts;
    counter_digest = digest;
  }

let run ?jobs ?(min_rounds = 0) ?(max_rounds = 24) (t : t) =
  let rec loop () =
    if (t.converged && t.round_no >= min_rounds) || t.round_no >= max_rounds then
      report t
    else begin
      round ?jobs t;
      loop ()
    end
  in
  loop ()
