open Ra_sim
open Ra_device
open Ra_core

type config = {
  mp : Mp.config;
  update : Code_update.config;
  breaker : Breaker.config;
  round_budget : Timebase.t;
  session_attempts : int;
  session_max_timeout : Timebase.t;
  net_delay : Timebase.t;
  probation_rounds : int;
  remediation_attempts : int;
  flap_threshold : int;
  gap_allowance : int;
}

let default_config =
  {
    mp = Mp.default_config;
    update = Code_update.default_config;
    breaker = Breaker.default_config;
    round_budget = Timebase.s 30;
    session_attempts = 8;
    session_max_timeout = Timebase.s 4;
    net_delay = Timebase.ms 40;
    probation_rounds = 2;
    remediation_attempts = 2;
    flap_threshold = 12;
    gap_allowance = 1;
  }

type outcome = Clean | Tampered | Timeout

type dsup = {
  id : Fleet.device_id;
  device : Device.t;
  verifier : Verifier.t;
  machine : Health.t;
  brk : Breaker.t;
  rtt : Rtt.t;
  mutable channel : Channel.config;
  mutable local_deadline : Timebase.t; (* device time the next round runs to *)
  mutable probation_clean : int;
  mutable remediations : int;
  mutable remediated : bool; (* some update push was verified *)
  mutable detected_round : int option;
  mutable pending_gap : bool;
  mutable pending_tampered : bool;
}

type t = {
  config : config;
  roster : dsup array; (* enrolment order *)
  by_id : (Fleet.device_id, dsup) Hashtbl.t;
  store : Ra_cache.Store.t; (* the fleet's shared digest store *)
  mutable round_no : int;
  mutable converged : bool;
  mutable attestations : int;
  mutable timeouts : int;
  mutable probes_blocked : int;
  mutable remediation_pushes : int;
  mutable journal : Ra_journal.Journal.t option;
  mutable last_blobs : Bytes.t array; (* last journaled per-device state *)
}

(* --- durable state ------------------------------------------------------- *)

module E = Ra_journal.Event
module C = Ra_journal.Codec

(* Positional enum tables: the wire index of each constructor. Appending
   new constructors keeps old journals readable; reordering breaks them. *)
(* ralint: allow P2 -- read-only constructor tables, never written. *)
let states =
  [|
    Health.Healthy;
    Health.Suspect;
    Health.Unreachable;
    Health.Compromised;
    Health.Quarantined;
    Health.Remediating;
    Health.Probation;
  |]

(* ralint: allow P2 -- read-only constructor table, never written. *)
let causes =
  [|
    Health.Verified_clean;
    Health.Verdict_tampered;
    Health.Report_timeout;
    Health.Gap_audit;
    Health.Breaker_open;
    Health.Probe_exhausted;
    Health.Flapping;
    Health.Isolated;
    Health.Update_pushed;
    Health.Update_verified;
    Health.Update_failed;
    Health.Probation_passed;
    Health.Probation_failed;
  |]

let index_in arr v =
  let rec go i = if arr.(i) = v then i else go (i + 1) in
  go 0

let checked arr what i =
  if i < 0 || i >= Array.length arr then
    C.fail (Printf.sprintf "bad %s index %d" what i)
  else arr.(i)

let serialize_device d =
  let w = C.writer () in
  C.str w d.id;
  C.u8 w (index_in states (Health.state d.machine));
  let hist = Health.history d.machine in
  C.i64 w (List.length hist);
  List.iter
    (fun tr ->
      C.i64 w tr.Health.round;
      C.u8 w (index_in states tr.Health.from_);
      C.u8 w (index_in causes tr.Health.cause);
      C.u8 w (index_in states tr.Health.to_))
    hist;
  C.bytes w (Breaker.save d.brk);
  C.bytes w (Rtt.save d.rtt);
  C.i64 w d.local_deadline;
  C.i64 w d.probation_clean;
  C.i64 w d.remediations;
  C.u8 w (if d.remediated then 1 else 0);
  C.i64 w (match d.detected_round with Some r -> r | None -> -1);
  C.u8 w (if d.pending_gap then 1 else 0);
  C.u8 w (if d.pending_tampered then 1 else 0);
  C.contents w

let restore_device d b =
  match
    let r = C.reader b in
    let id = C.read_str r in
    let current = checked states "state" (C.read_u8 r) in
    let n = C.read_i64 r in
    if n < 0 || n > 1_000_000 then C.fail "implausible history length";
    let hist =
      List.init n (fun _ ->
          let round = C.read_i64 r in
          let from_ = checked states "state" (C.read_u8 r) in
          let cause = checked causes "cause" (C.read_u8 r) in
          let to_ = checked states "state" (C.read_u8 r) in
          { Health.round; from_; cause; to_ })
    in
    let brk = C.read_bytes r in
    let rtt = C.read_bytes r in
    let local_deadline = C.read_i64 r in
    let probation_clean = C.read_i64 r in
    let remediations = C.read_i64 r in
    let remediated = C.read_u8 r <> 0 in
    let detected = C.read_i64 r in
    let pending_gap = C.read_u8 r <> 0 in
    let pending_tampered = C.read_u8 r <> 0 in
    C.expect_end r;
    ( id,
      current,
      hist,
      brk,
      rtt,
      (local_deadline, probation_clean, remediations, remediated, detected),
      (pending_gap, pending_tampered) )
  with
  | exception C.Corrupt msg -> Error msg
  | id, current, hist, brk, rtt, scalars, pendings ->
      let ( let* ) = Result.bind in
      let* () =
        if id = d.id then Ok ()
        else
          Error
            (Printf.sprintf "device id mismatch: recovered %S, roster has %S" id
               d.id)
      in
      (* Health.restore re-validates every edge against the declared
         relation — an illegal recovered history is rejected here. *)
      let* () = Health.restore d.machine hist in
      let* () =
        if Health.state d.machine = current then Ok ()
        else Error "recovered health state does not match its history"
      in
      let* () = Breaker.restore d.brk brk in
      let* () = Rtt.restore d.rtt rtt in
      let local_deadline, probation_clean, remediations, remediated, detected =
        scalars
      in
      let pending_gap, pending_tampered = pendings in
      d.local_deadline <- local_deadline;
      d.probation_clean <- probation_clean;
      d.remediations <- remediations;
      d.remediated <- remediated;
      d.detected_round <- (if detected < 0 then None else Some detected);
      d.pending_gap <- pending_gap;
      d.pending_tampered <- pending_tampered;
      Ok ()

let serialize_globals t =
  let w = C.writer () in
  C.i64 w t.round_no;
  C.u8 w (if t.converged then 1 else 0);
  C.i64 w t.attestations;
  C.i64 w t.timeouts;
  C.i64 w t.probes_blocked;
  C.i64 w t.remediation_pushes;
  C.contents w

let restore_globals t b =
  match
    let r = C.reader b in
    let round_no = C.read_i64 r in
    let converged = C.read_u8 r <> 0 in
    let attestations = C.read_i64 r in
    let timeouts = C.read_i64 r in
    let probes_blocked = C.read_i64 r in
    let remediation_pushes = C.read_i64 r in
    C.expect_end r;
    (round_no, converged, attestations, timeouts, probes_blocked, remediation_pushes)
  with
  | exception C.Corrupt msg -> Error msg
  | round_no, converged, attestations, timeouts, probes_blocked, pushes ->
      t.round_no <- round_no;
      t.converged <- converged;
      t.attestations <- attestations;
      t.timeouts <- timeouts;
      t.probes_blocked <- probes_blocked;
      t.remediation_pushes <- pushes;
      Ok ()

let state_magic = "RSUP1"

let serialize t =
  let w = C.writer () in
  C.str w state_magic;
  C.bytes w (serialize_globals t);
  C.i64 w (Array.length t.roster);
  Array.iter (fun d -> C.bytes w (serialize_device d)) t.roster;
  C.contents w

let state_digest t = Printf.sprintf "%08x" (Ra_crypto.Crc32.digest (serialize t))

let load t b =
  match
    let r = C.reader b in
    if C.read_str r <> state_magic then C.fail "bad supervisor state magic";
    let g = C.read_bytes r in
    let n = C.read_i64 r in
    if n <> Array.length t.roster then
      C.fail
        (Printf.sprintf "roster size mismatch: state has %d, supervisor has %d" n
           (Array.length t.roster));
    let blobs = Array.init n (fun _ -> C.read_bytes r) in
    C.expect_end r;
    (g, blobs)
  with
  | exception C.Corrupt msg -> Error msg
  | g, blobs ->
      let ( let* ) = Result.bind in
      let* () = restore_globals t g in
      let n = Array.length t.roster in
      let rec devices i =
        if i = n then Ok ()
        else
          let* () = restore_device t.roster.(i) blobs.(i) in
          devices (i + 1)
      in
      let* () = devices 0 in
      if t.journal <> None then
        t.last_blobs <- Array.map serialize_device t.roster;
      Ok ()

(* --- journal emission ---------------------------------------------------- *)

let jemit t e =
  match t.journal with None -> () | Some j -> Ra_journal.Journal.append j e

(* WAL discipline: the edge event is appended before the in-memory apply.
   [Health.apply] absorbs illegal causes silently, so only causes the
   relation declares from the current state produce a record. *)
let journal_apply t d cause =
  (match t.journal with
  | None -> ()
  | Some _ -> (
      match Health.legal (Health.state d.machine) cause with
      | None -> ()
      | Some to_ ->
          jemit t
            (E.make "edge"
               [
                 ("dev", E.S d.id);
                 ("round", E.I t.round_no);
                 ("from", E.S (Health.state_to_string (Health.state d.machine)));
                 ("cause", E.S (Health.cause_to_string cause));
                 ("to", E.S (Health.state_to_string to_));
               ])));
  ignore (Health.apply d.machine ~round:t.round_no cause)

(* Breaker methods mutate the phase internally; journal the transition by
   observing the phase across the call. *)
let with_breaker t d f =
  let before = Breaker.phase d.brk in
  let result = f () in
  let after = Breaker.phase d.brk in
  if before <> after then
    jemit t
      (E.make "breaker"
         [
           ("dev", E.S d.id);
           ("round", E.I t.round_no);
           ("from", E.S (Breaker.phase_to_string before));
           ("to", E.S (Breaker.phase_to_string after));
         ]);
  result

let note_detection t d =
  if d.detected_round = None then begin
    d.detected_round <- Some t.round_no;
    jemit t (E.make "detect" [ ("dev", E.S d.id); ("round", E.I t.round_no) ])
  end

let create ?(config = default_config) ?journal fleet =
  (* Fleet devices all run the same release, so their engines share a PRNG
     seed; jitter drawn from them would be identical fleet-wide. Split each
     breaker's stream from one supervisor root instead — sequentially, in
     roster order, before any fan-out, so streams are decorrelated across
     devices yet bit-identical across runs and [jobs] values. *)
  let jitter_root = Prng.create ~seed:0x5c0bb1e in
  let roster =
    Array.of_list
      (List.map
         (fun id ->
           let device = Fleet.device fleet id in
           let rng = Prng.split jitter_root in
           {
             id;
             device;
             verifier = Verifier.of_device device;
             machine = Health.create ();
             brk = Breaker.create ~config:config.breaker ~rng ();
             rtt =
               Rtt.create ~initial_rto:(Timebase.s 1) ~min_rto:(Timebase.ms 50)
                 ~max_rto:config.session_max_timeout ();
             channel = { Channel.ideal with Channel.delay = config.net_delay };
             local_deadline = Engine.now device.Device.engine;
             probation_clean = 0;
             remediations = 0;
             remediated = false;
             detected_round = None;
             pending_gap = false;
             pending_tampered = false;
           })
         (Fleet.enrolled fleet))
  in
  let by_id = Hashtbl.create (Array.length roster) in
  Array.iter (fun d -> Hashtbl.replace by_id d.id d) roster;
  let t =
    {
      config;
      roster;
      by_id;
      store = Fleet.store fleet;
      round_no = 0;
      converged = false;
      attestations = 0;
      timeouts = 0;
      probes_blocked = 0;
      remediation_pushes = 0;
      journal;
      last_blobs = [||];
    }
  in
  if journal <> None then t.last_blobs <- Array.map serialize_device roster;
  t

let attach_journal t j =
  t.journal <- Some j;
  (* re-baseline the delta tracking at the attach point *)
  t.last_blobs <- Array.map serialize_device t.roster

let converged t = t.converged

let find t id =
  match Hashtbl.find_opt t.by_id id with
  | Some d -> d
  | None -> raise Not_found

let set_channel t id channel = (find t id).channel <- channel

let health t id = Health.state (find t id).machine

let machine t id = (find t id).machine

let breaker t id = (find t id).brk

let note_gap_audit t id audit =
  let d = find t id in
  if audit.Erasmus.audit_tampered > 0 then d.pending_tampered <- true;
  let gap_width =
    List.fold_left (fun a (lo, hi) -> a + hi - lo + 1) 0 audit.Erasmus.gaps
  in
  if gap_width > t.config.gap_allowance then d.pending_gap <- true;
  (* External evidence is journaled for the audit trail. It is an input,
     not a derived fact, so a journal containing gap audits replays only
     if the replayer re-feeds them — fleet campaigns do not use them. *)
  jemit t
    (E.make "gap-audit"
       [
         ("dev", E.S d.id);
         ("round", E.I t.round_no);
         ("tampered", E.I audit.Erasmus.audit_tampered);
         ("gap", E.I gap_width);
       ]);
  (* fresh external evidence re-opens a converged fleet *)
  if d.pending_tampered || d.pending_gap then t.converged <- false

let rounds_run t = t.round_no

(* A quarantined device is worth a(nother) update push only when it got
   there through verification evidence — an unreachable or flapping device
   cannot be reflashed over a link that does not answer. *)
let remediable t d =
  Health.state d.machine = Health.Quarantined
  && d.remediations < t.config.remediation_attempts
  && (match Health.quarantine_reason d.machine with
     | Some (Health.Isolated | Health.Update_failed | Health.Probation_failed
            | Health.Verdict_tampered) ->
       true
     | Some _ | None -> false)

let settled t d =
  match Health.state d.machine with
  | Health.Healthy -> true
  | Health.Quarantined -> not (remediable t d)
  | _ -> false

(* --- round phases -------------------------------------------------------- *)

type action = Advance | Attest | Remediate

type exec_result =
  | Nothing
  | Session of Reliable_protocol.result option
  | Remediation of Code_update.outcome option

let plan t d =
  let apply c = journal_apply t d c in
  (* externally supplied evidence (ERASMUS collection audits) first *)
  if d.pending_tampered then begin
    d.pending_tampered <- false;
    d.pending_gap <- false;
    note_detection t d;
    apply Health.Verdict_tampered
  end;
  if d.pending_gap then begin
    d.pending_gap <- false;
    apply Health.Gap_audit
  end;
  (* flap damping: a device that keeps churning through states gets
     quarantined rather than looping forever — the no-livelock backstop *)
  if
    Health.transitions d.machine >= t.config.flap_threshold
    && Health.state d.machine <> Health.Quarantined
  then apply Health.Flapping;
  let now = Engine.now d.device.Device.engine in
  match Health.state d.machine with
  | Health.Compromised ->
    apply Health.Isolated;
    Advance
  | Health.Quarantined -> if remediable t d then Remediate else Advance
  | Health.Remediating ->
    (* defensive: remediation resolves within its round *)
    Advance
  | Health.Unreachable ->
    if Breaker.exhausted d.brk then begin
      apply Health.Probe_exhausted;
      Advance
    end
    else if with_breaker t d (fun () -> Breaker.allow d.brk ~now) then Attest
    else begin
      t.probes_blocked <- t.probes_blocked + 1;
      Advance
    end
  | Health.Healthy | Health.Suspect | Health.Probation ->
    if with_breaker t d (fun () -> Breaker.allow d.brk ~now) then Attest
    else begin
      t.probes_blocked <- t.probes_blocked + 1;
      Advance
    end

let session_config t d =
  {
    Reliable_protocol.mp = t.config.mp;
    channel = d.channel;
    auth_time = Timebase.us 200;
    retry_timeout = Timebase.s 1;
    max_attempts = t.config.session_attempts;
    backoff = 1.6;
    backoff_jitter = 0.1;
    max_timeout = t.config.session_max_timeout;
  }

(* Everything here touches only [d]'s own simulation (plus the fleet's
   mutex-guarded digest store), so it is safe — and deterministic — to run
   from any pool domain. *)
let execute t d action =
  d.local_deadline <- Timebase.add d.local_deadline t.config.round_budget;
  match action with
  | Advance ->
    Device.run ~until:d.local_deadline d.device;
    Nothing
  | Attest ->
    let result = ref None in
    Reliable_protocol.run d.device d.verifier (session_config t d) ~rtt:d.rtt
      ~on_done:(fun r -> result := Some r)
      ();
    Device.run ~until:d.local_deadline d.device;
    Session !result
  | Remediate ->
    let out = ref None in
    Code_update.run d.device t.config.update
      ~new_seed:d.device.Device.config.Device.seed
      ~on_done:(fun o -> out := Some o)
      ();
    Device.run ~until:d.local_deadline d.device;
    Remediation !out

let outcome_of_session = function
  | Some { Reliable_protocol.verdict = Some Verifier.Clean; _ } -> Clean
  | Some { Reliable_protocol.verdict = Some Verifier.Tampered; _ } -> Tampered
  | Some { Reliable_protocol.verdict = None; _ } | None -> Timeout

let apply_result t d result =
  let apply c = journal_apply t d c in
  match result with
  | Nothing -> ()
  | Session r ->
    t.attestations <- t.attestations + 1;
    let oc = outcome_of_session r in
    jemit t
      (E.make "attest"
         [
           ("dev", E.S d.id);
           ("round", E.I t.round_no);
           ( "outcome",
             E.S
               (match oc with
               | Clean -> "clean"
               | Tampered -> "tampered"
               | Timeout -> "timeout") );
         ]);
    (match oc with
    | Clean ->
      with_breaker t d (fun () -> Breaker.record_success d.brk);
      (match Health.state d.machine with
      | Health.Probation ->
        d.probation_clean <- d.probation_clean + 1;
        if d.probation_clean >= t.config.probation_rounds then
          apply Health.Probation_passed
      | _ -> apply Health.Verified_clean)
    | Tampered ->
      with_breaker t d (fun () -> Breaker.record_success d.brk);
      note_detection t d;
      apply Health.Verdict_tampered
    | Timeout ->
      t.timeouts <- t.timeouts + 1;
      with_breaker t d (fun () ->
          Breaker.record_failure d.brk
            ~now:(Engine.now d.device.Device.engine)
            ~rto_hint:(Rtt.rto d.rtt));
      apply Health.Report_timeout;
      if Breaker.phase d.brk = Breaker.Open then apply Health.Breaker_open)
  | Remediation out ->
    t.remediation_pushes <- t.remediation_pushes + 1;
    d.remediations <- d.remediations + 1;
    let ok =
      match out with
      | Some o ->
        o.Code_update.erasure_proof_ok
        && o.Code_update.update_verdict = Verifier.Clean
        && not o.Code_update.malware_survived
      | None -> false
    in
    jemit t
      (E.make "remedy"
         [
           ("dev", E.S d.id);
           ("round", E.I t.round_no);
           ("ok", E.I (if ok then 1 else 0));
         ]);
    apply Health.Update_pushed;
    if ok then begin
      d.probation_clean <- 0;
      d.remediated <- true;
      apply Health.Update_verified
    end
    else apply Health.Update_failed

let total_transitions t =
  Array.fold_left (fun acc d -> acc + Health.transitions d.machine) 0 t.roster

(* Round-boundary journaling: per-device state deltas since the last
   boundary, then a "round-end" carrying the globals, the state digest
   and the shared-store counters — the provenance chain for every digest
   the round consumed. Commit (fsync) happens exactly here, so a whole
   round is the acknowledgement unit, and recovery rolls back to the
   last completed round. *)
let journal_round_end t =
  match t.journal with
  | None -> ()
  | Some j ->
    Array.iteri
      (fun i d ->
        let blob = serialize_device d in
        if not (Bytes.equal blob t.last_blobs.(i)) then begin
          jemit t
            (E.make "dstate" [ ("i", E.I i); ("dev", E.S d.id); ("s", E.B blob) ]);
          t.last_blobs.(i) <- blob
        end)
      t.roster;
    jemit t
      (E.make "round-end"
         [
           ("round", E.I t.round_no); (* = completed-round count *)
           ("g", E.B (serialize_globals t));
           ("digest", E.S (state_digest t));
           ("store-lookups", E.I (Ra_cache.Store.lookups t.store));
           ("store-hashed", E.I (Ra_cache.Store.computed t.store));
           ("store-distinct", E.I (Ra_cache.Store.distinct_contents t.store));
         ]);
    Ra_journal.Journal.commit j;
    if Ra_journal.Journal.want_snapshot j ~round:t.round_no then
      Ra_journal.Journal.snapshot j ~round:t.round_no ~state:(serialize t)

let round ?jobs ?shards t =
  jemit t (E.make "round-start" [ ("round", E.I t.round_no) ]);
  let transitions0 = total_transitions t in
  let timeouts0 = t.timeouts in
  (* All journal records are emitted from the sequential plan and apply
     phases, in roster order — never from the parallel execute phase — so
     the journal byte stream is identical for every [jobs] value.
     [shards] groups the execute phase into that many contiguous chunks
     (one pool task each) instead of one task per device; per-device
     results land by index either way, so it moves scheduling overhead
     only. *)
  let n = Array.length t.roster in
  let chunk =
    match shards with
    | None -> 1
    | Some s -> max 1 ((n + max 1 s - 1) / max 1 s)
  in
  let actions = Array.map (fun d -> plan t d) t.roster in
  let results =
    Ra_parallel.parallel_init ?jobs ~chunk n (fun i ->
        execute t t.roster.(i) actions.(i))
  in
  Array.iteri (fun i d -> apply_result t d results.(i)) t.roster;
  t.round_no <- t.round_no + 1;
  t.converged <-
    Array.for_all (fun d -> settled t d) t.roster
    && total_transitions t = transitions0
    && t.timeouts = timeouts0;
  journal_round_end t

(* --- report -------------------------------------------------------------- *)

type report = {
  rounds : int;
  converged : bool;
  healthy : Fleet.device_id list;
  quarantined : (Fleet.device_id * Health.cause) list;
  unsettled : Fleet.device_id list;
  detections : (Fleet.device_id * int) list;
  remediated : Fleet.device_id list;
  attestations : int;
  timeouts : int;
  probes_blocked : int;
  remediation_pushes : int;
  transition_counts : ((Health.state * Health.cause * Health.state) * int) list;
  counter_digest : string;
}

let report t =
  let healthy = ref [] and quarantined = ref [] and unsettled = ref [] in
  let detections = ref [] and remediated = ref [] in
  let counts = Hashtbl.create 32 in
  Array.iter
    (fun d ->
      (match Health.state d.machine with
      | Health.Healthy -> healthy := d.id :: !healthy
      | Health.Quarantined ->
        let reason =
          Option.value ~default:Health.Isolated (Health.quarantine_reason d.machine)
        in
        quarantined := (d.id, reason) :: !quarantined
      | _ -> unsettled := d.id :: !unsettled);
      (match d.detected_round with
      | Some r -> detections := (d.id, r) :: !detections
      | None -> ());
      if d.remediated then remediated := d.id :: !remediated;
      List.iter
        (fun tr ->
          let key = (tr.Health.from_, tr.Health.cause, tr.Health.to_) in
          Hashtbl.replace counts key
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
        (Health.history d.machine))
    t.roster;
  (* The digest below concatenates these edges in list order, so bucket
     order must never escape the fold: sort at the fold site (ralint rule
     D3 enforces exactly this shape — fold directly under an explicit
     sort), keyed on the rendered names for a stable, readable order. *)
  let transition_counts =
    List.sort
      (fun ((f1, c1, t1), _) ((f2, c2, t2), _) ->
        compare
          ( Health.state_to_string f1,
            Health.cause_to_string c1,
            Health.state_to_string t1 )
          ( Health.state_to_string f2,
            Health.cause_to_string c2,
            Health.state_to_string t2 ))
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [])
  in
  let digest =
    let edges =
      String.concat ";"
        (List.map
           (fun ((f, c, to_), n) ->
             Printf.sprintf "%s>%s/%s=%d" (Health.state_to_string f)
               (Health.state_to_string to_) (Health.cause_to_string c) n)
           transition_counts)
    in
    Printf.sprintf
      "rounds=%d converged=%b healthy=%d quarantined=%d unsettled=%d \
       detections=%d remediated=%d attested=%d timeouts=%d blocked=%d \
       pushes=%d edges[%s]"
      t.round_no t.converged (List.length !healthy) (List.length !quarantined)
      (List.length !unsettled) (List.length !detections)
      (List.length !remediated) t.attestations t.timeouts t.probes_blocked
      t.remediation_pushes edges
  in
  {
    rounds = t.round_no;
    converged = t.converged;
    healthy = List.rev !healthy;
    quarantined = List.rev !quarantined;
    unsettled = List.rev !unsettled;
    detections = List.rev !detections;
    remediated = List.rev !remediated;
    attestations = t.attestations;
    timeouts = t.timeouts;
    probes_blocked = t.probes_blocked;
    remediation_pushes = t.remediation_pushes;
    transition_counts;
    counter_digest = digest;
  }

let run ?jobs ?shards ?(min_rounds = 0) ?(max_rounds = 24) (t : t) =
  let rec loop () =
    if (t.converged && t.round_no >= min_rounds) || t.round_no >= max_rounds then
      report t
    else begin
      round ?jobs ?shards t;
      loop ()
    end
  in
  loop ()

(* --- crash recovery ------------------------------------------------------ *)

module Recovery = struct
  (* Recovery is deliberately redundant: the journal carries both the
     event-by-event story (edges, attest outcomes) and, at each round
     boundary, the materialized per-device state deltas. [reconstruct]
     rebuilds the full state from snapshot + deltas without executing
     anything; the resume path in Ra_experiments.Fleet_chaos also
     re-executes the journaled prefix in verify mode and insists both
     roads end at the same bytes. *)

  let round_end_tag = "round-end"

  let completed_rounds events =
    let keep = ref 0 and rounds = ref 0 in
    Array.iteri
      (fun i e ->
        if e.E.tag = round_end_tag then begin
          keep := i + 1;
          match E.find_i e "round" with
          | Some r -> rounds := r
          | None -> ()
        end)
      events;
    (!rounds, !keep)

  let reconstruct ~base ~after events =
    match
      let r = C.reader base in
      if C.read_str r <> state_magic then C.fail "bad supervisor state magic";
      let globals = ref (C.read_bytes r) in
      let n = C.read_i64 r in
      if n < 0 || n > 10_000_000 then C.fail "implausible roster size";
      let blobs = Array.init n (fun _ -> C.read_bytes r) in
      C.expect_end r;
      Array.iteri
        (fun i e ->
          if i >= after then
            match e.E.tag with
            | "dstate" ->
              let idx = E.geti e "i" in
              if idx < 0 || idx >= n then
                C.fail (Printf.sprintf "dstate index %d out of range" idx);
              blobs.(idx) <- E.getb e "s"
            | tag when tag = round_end_tag -> globals := E.getb e "g"
            | _ -> ())
        events;
      let w = C.writer () in
      C.str w state_magic;
      C.bytes w !globals;
      C.i64 w n;
      Array.iter (C.bytes w) blobs;
      C.contents w
    with
    | b -> Ok b
    | exception C.Corrupt msg -> Error msg
end
