(** Fault schedules for chaos experiments: a [plan] bundles everything that
    will go wrong in one trial — channel fault rates, an optional partition
    window, an optional crash instant — drawn deterministically from the
    simulation PRNG so a trial is reproducible from its seed alone. *)

open Ra_sim
open Ra_device

type profile =
  | Network_only  (** loss / duplication / corruption / reordering only *)
  | With_partition  (** network faults plus one total-outage window *)
  | With_crash  (** network faults plus one device crash (and reboot) *)

val profile_to_string : profile -> string

type plan = {
  channel : Channel.config;
  crash_at : Timebase.t option;
  reboot_delay : Timebase.t;
  horizon : Timebase.t;  (** the trial length the plan was drawn for *)
}

val random_plan : Prng.t -> ?horizon:Timebase.t -> profile -> plan
(** Draw a plan for a trial of [horizon] (default 60 s) length. Fault rates
    are capped (loss at 0.35, the rest at 0.3) so recovery remains likely
    within a bounded retry budget; a partition window sits strictly inside
    the horizon and covers at most half of it; a crash lands in the first
    half, leaving time to observe the recovery. *)

val install : Device.t -> plan -> unit
(** Arm the device-level faults (the crash timer). Channel faults take
    effect by passing [plan.channel] to the scheme under test. *)

val describe : plan -> string
(** One line for trial logs: rates, partition windows, crash instant. *)
