open Ra_sim
open Ra_device

type profile = Network_only | With_partition | With_crash

let profile_to_string = function
  | Network_only -> "network-only"
  | With_partition -> "with-partition"
  | With_crash -> "with-crash"

type plan = {
  channel : Channel.config;
  crash_at : Timebase.t option;
  reboot_delay : Timebase.t;
  horizon : Timebase.t;
}

(* Ceilings chosen so that a bounded-retry protocol still has a workable
   success probability: at 35% loss a 4-attempt exchange fails outright
   only ~2% of the time, and backoff plus the chaos harness's larger
   attempt budgets push that far lower. *)
let max_loss = 0.35
let max_duplicate = 0.3
let max_corrupt = 0.3
let max_reorder = 0.3

let random_plan rng ?(horizon = Timebase.s 60) profile =
  if horizon <= 0 then invalid_arg "Faults.random_plan: horizon <= 0";
  let frac bound = float_of_int (Prng.int rng ~bound:1000) /. 1000.0 *. bound in
  let base_delay = Timebase.ms (1 + Prng.int rng ~bound:50) in
  let channel =
    {
      Channel.ideal with
      Channel.delay = base_delay;
      jitter = Timebase.ms (Prng.int rng ~bound:20);
      loss = frac max_loss;
      duplicate = frac max_duplicate;
      corrupt = frac max_corrupt;
      reorder = frac max_reorder;
    }
  in
  let channel =
    match profile with
    | Network_only | With_crash -> channel
    | With_partition ->
      (* one outage window strictly inside the horizon, at most half of it,
         so there is always air time to recover afterwards *)
      let max_len = max 1 (horizon / 2) in
      let len = 1 + Prng.int rng ~bound:max_len in
      let start = Prng.int rng ~bound:(horizon - len) in
      { channel with Channel.partitions = [ (start, Timebase.add start len) ] }
  in
  let crash_at =
    match profile with
    | Network_only | With_partition -> None
    | With_crash ->
      (* in the first half of the horizon: the point is recovery, and a
         crash at the very end would only test the timeout path *)
      Some (Prng.int rng ~bound:(max 1 (horizon / 2)))
  in
  {
    channel;
    crash_at;
    reboot_delay = Timebase.ms (50 + Prng.int rng ~bound:450);
    horizon;
  }

let install device plan =
  match plan.crash_at with
  | None -> ()
  | Some at ->
    let eng = device.Device.engine in
    ignore
      (Engine.schedule eng ~at (fun _ ->
           Device.crash ~reboot_delay:plan.reboot_delay device))

let describe plan =
  let c = plan.channel in
  let partition =
    match c.Channel.partitions with
    | [] -> "none"
    | windows ->
      String.concat ","
        (List.map
           (fun (a, b) ->
             Printf.sprintf "[%s,%s]" (Timebase.to_string a) (Timebase.to_string b))
           windows)
  in
  let crash =
    match plan.crash_at with
    | None -> "none"
    | Some at ->
      Printf.sprintf "at %s (reboot %s)" (Timebase.to_string at)
        (Timebase.to_string plan.reboot_delay)
  in
  Printf.sprintf
    "loss=%.2f dup=%.2f corrupt=%.2f reorder=%.2f delay=%s partition=%s crash=%s"
    c.Channel.loss c.Channel.duplicate c.Channel.corrupt c.Channel.reorder
    (Timebase.to_string c.Channel.delay)
    partition crash
