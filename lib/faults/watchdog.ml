open Ra_sim

type t = {
  engine : Engine.t;
  timeout : Timebase.t;
  on_bite : unit -> unit;
  mutable armed : bool;
  mutable deadline : Timebase.t;
  mutable bites : int;
}

let rec watch t =
  if t.armed then
    ignore
      (Engine.schedule t.engine ~at:t.deadline (fun _ ->
           if t.armed then begin
             if Engine.now t.engine >= t.deadline then begin
               (* not petted in time *)
               t.bites <- t.bites + 1;
               Engine.record t.engine ~tag:"watchdog" "watchdog bites";
               t.deadline <- Timebase.add (Engine.now t.engine) t.timeout;
               watch t;
               t.on_bite ()
             end
             else
               (* a pet moved the deadline; chase it *)
               watch t
           end))

let create engine ~timeout ~on_bite =
  if timeout <= 0 then invalid_arg "Watchdog.create: timeout <= 0";
  let t =
    {
      engine;
      timeout;
      on_bite;
      armed = true;
      deadline = Timebase.add (Engine.now engine) timeout;
      bites = 0;
    }
  in
  watch t;
  t

let pet t =
  if t.armed then t.deadline <- Timebase.add (Engine.now t.engine) t.timeout

let disarm t = t.armed <- false

let bites t = t.bites
