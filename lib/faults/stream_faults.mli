(** Byte-stream faults for the socket path (the TCP analogue of
    {!Ra_sim.Channel}'s datagram faults).

    The datagram model damages whole messages; a stream connection fails
    at byte granularity: writes tear at arbitrary boundaries, connections
    stall while a slow peer drains, resets land mid-frame, and a flipped
    bit can slip past the transport. Each framed write is assigned one
    {!action}, drawn deterministically from the connection's PRNG, so a
    chaos campaign over many connections replays bit-identically from its
    seed. The simulated transport ({!Ra_server.Netsim}) applies the
    actions; {!Ra_core.Frame.Reader}'s magic/CRC discipline is what must
    absorb them. *)

open Ra_sim

type config = {
  tear : float;  (** P(write delivered in two chunks, a step apart) *)
  stall : float;  (** P(the link pauses before delivering this write) *)
  stall_steps : int;  (** how many simulation steps a stall lasts *)
  reset : float;  (** P(connection dies after a prefix of this write) *)
  corrupt : float;  (** P(one byte of the write is flipped in flight) *)
}

val ideal : config
(** All probabilities zero: a faithful stream. *)

val default : config
(** The harsh mix the server-chaos harness uses: frequent tears, regular
    stalls, occasional resets and corruption. *)

type action =
  | Deliver  (** the whole write arrives in one chunk *)
  | Tear of int
      (** first [k] bytes arrive now, the rest one step later — the torn
          write every incremental reader must reassemble *)
  | Stall of int  (** the write (and the link) pauses for [n] steps *)
  | Reset_after of int
      (** [k] bytes (possibly 0) arrive, then the connection is gone;
          unacknowledged requests must be retried on a fresh one *)
  | Corrupt_at of int
      (** the write arrives whole with byte [i] flipped — must be caught
          by the stream CRC, never parsed as a payload *)

val draw : Prng.t -> config -> len:int -> action
(** Assign a fault action to one framed write of [len] bytes. Consumes a
    fixed number of PRNG draws regardless of the outcome, so fault
    schedules are stable under config changes that only move
    probabilities. Raises [Invalid_argument] when [len = 0]. *)

val describe : config -> string
(** One line for chaos-trial logs. *)
