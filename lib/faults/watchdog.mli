(** A hardware watchdog timer: software must [pet] it at least once per
    [timeout] or it bites, firing a recovery action (typically
    {!Ra_device.Device.crash} — a watchdog reset looks exactly like a power
    cycle to the software). Biting re-arms it for the next window.

    Caveat for simulations: an armed watchdog keeps the event queue
    non-empty forever, so drive the engine with [Engine.run ~until:...] (or
    [disarm] it) rather than running to quiescence. *)

open Ra_sim

type t

val create : Engine.t -> timeout:Timebase.t -> on_bite:(unit -> unit) -> t
(** Armed immediately; the first deadline is [now + timeout]. *)

val pet : t -> unit
(** Push the deadline back to [now + timeout]. *)

val disarm : t -> unit
(** Stop watching; no further bites, pets are ignored. *)

val bites : t -> int
