open Ra_sim

(* Byte-stream faults for the socket path. The datagram channel model
   (Channel) damages whole messages; a TCP connection fails differently —
   a write is torn at an arbitrary byte, a connection stalls while the
   peer's queue drains, a reset arrives mid-frame, a flipped bit slips in
   below the transport's own checksum. Each delivery of a framed write
   draws one [action] from the connection's PRNG, so a whole chaos
   campaign is a pure function of its seed. *)

type config = {
  tear : float;
  stall : float;
  stall_steps : int;
  reset : float;
  corrupt : float;
}

let ideal = { tear = 0.; stall = 0.; stall_steps = 0; reset = 0.; corrupt = 0. }

let default =
  { tear = 0.25; stall = 0.1; stall_steps = 12; reset = 0.04; corrupt = 0.05 }

type action =
  | Deliver
  | Tear of int
  | Stall of int
  | Reset_after of int
  | Corrupt_at of int

(* Draw order fixes the precedence (reset beats corruption beats tearing
   beats stalling) and, more importantly, the PRNG consumption: every
   delivery consumes the same number of draws on every run, so two runs
   with the same seed see byte-identical fault schedules. *)
let draw rng config ~len =
  if len <= 0 then invalid_arg "Stream_faults.draw: empty write";
  let p_reset = Prng.float rng in
  let p_corrupt = Prng.float rng in
  let p_tear = Prng.float rng in
  let p_stall = Prng.float rng in
  let cut = 1 + Prng.int rng ~bound:(max 1 (len - 1)) in
  let pos = Prng.int rng ~bound:len in
  if p_reset < config.reset then Reset_after (cut mod len)
  else if p_corrupt < config.corrupt then Corrupt_at pos
  else if p_tear < config.tear && len > 1 then Tear cut
  else if p_stall < config.stall then Stall (max 1 config.stall_steps)
  else Deliver

let describe c =
  Printf.sprintf "tear=%.2f stall=%.2f(%d steps) reset=%.2f corrupt=%.2f"
    c.tear c.stall c.stall_steps c.reset c.corrupt
