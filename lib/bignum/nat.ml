(* Little-endian arrays of base-2^26 limbs, no leading zero limb. 2^26 keeps
   every intermediate product and quotient estimate of Knuth's Algorithm D
   comfortably inside a 63-bit native int. *)

let limb_bits = 26
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = int array

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let is_zero a = Array.length a = 0

let normalise a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int v =
  if v < 0 then invalid_arg "Nat.of_int: negative";
  if v = 0 then zero
  else begin
    let rec limbs acc v =
      if v = 0 then List.rev acc
      else limbs ((v land limb_mask) :: acc) (v lsr limb_bits)
    in
    Array.of_list (limbs [] v)
  end

let bit_length a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let rec msb v acc = if v = 0 then acc else msb (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + msb a.(n - 1) 0
  end

let to_int a =
  if bit_length a > 62 then None
  else begin
    let acc = ref 0 in
    for i = Array.length a - 1 downto 0 do
      acc := (!acc lsl limb_bits) lor a.(i)
    done;
    Some !acc
  end

let compare a b =
  let na = Array.length a and nb = Array.length b in
  if na <> nb then Int.compare na nb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Int.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (na - 1)
  end

let equal a b = compare a b = 0

let is_even a = Array.length a = 0 || a.(0) land 1 = 0

let test_bit a i =
  let limb = i / limb_bits in
  limb < Array.length a && (a.(limb) lsr (i mod limb_bits)) land 1 = 1

let add a b =
  let na = Array.length a and nb = Array.length b in
  let n = max na nb in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < na then a.(i) else 0) + (if i < nb then b.(i) else 0) + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  out.(n) <- !carry;
  normalise out

let sub a b =
  if compare a b < 0 then invalid_arg "Nat.sub: negative result";
  let na = Array.length a and nb = Array.length b in
  let out = Array.make na 0 in
  let borrow = ref 0 in
  for i = 0 to na - 1 do
    let d = a.(i) - (if i < nb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  normalise out

let mul a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then zero
  else begin
    let out = Array.make (na + nb) 0 in
    for i = 0 to na - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to nb - 1 do
        let s = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      out.(i + nb) <- out.(i + nb) + !carry
    done;
    normalise out
  end

let shift_left a bits =
  if bits < 0 then invalid_arg "Nat.shift_left: negative shift";
  if is_zero a || bits = 0 then a
  else begin
    let limb_shift = bits / limb_bits and bit_shift = bits mod limb_bits in
    let na = Array.length a in
    let out = Array.make (na + limb_shift + 1) 0 in
    for i = 0 to na - 1 do
      let v = a.(i) lsl bit_shift in
      out.(i + limb_shift) <- out.(i + limb_shift) lor (v land limb_mask);
      out.(i + limb_shift + 1) <- v lsr limb_bits
    done;
    normalise out
  end

let shift_right a bits =
  if bits < 0 then invalid_arg "Nat.shift_right: negative shift";
  if is_zero a || bits = 0 then a
  else begin
    let limb_shift = bits / limb_bits and bit_shift = bits mod limb_bits in
    let na = Array.length a in
    if limb_shift >= na then zero
    else begin
      let n = na - limb_shift in
      let out = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift > 0 && i + limb_shift + 1 < na then
            (a.(i + limb_shift + 1) lsl (limb_bits - bit_shift)) land limb_mask
          else 0
        in
        out.(i) <- lo lor hi
      done;
      normalise out
    end
  end

(* Short division by a single limb. *)
let divmod_limb a d =
  let na = Array.length a in
  let q = Array.make na 0 in
  let r = ref 0 in
  for i = na - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalise q, of_int !r)

(* Knuth TAOCP vol. 2 section 4.3.1, Algorithm D. *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then divmod_limb a b.(0)
  else begin
    let n = Array.length b in
    (* D1: normalise so the divisor's top limb has its high bit set. *)
    let top_bits =
      let rec msb v acc = if v = 0 then acc else msb (v lsr 1) (acc + 1) in
      msb b.(n - 1) 0
    in
    let shift = limb_bits - top_bits in
    let u_shifted = shift_left a shift in
    let v = shift_left b shift in
    assert (Array.length v = n);
    let m = Array.length u_shifted - n in
    let u = Array.make (Array.length u_shifted + 1) 0 in
    Array.blit u_shifted 0 u 0 (Array.length u_shifted);
    let q = Array.make (m + 1) 0 in
    let v_top = v.(n - 1) in
    let v_next = v.(n - 2) in
    for j = m downto 0 do
      (* D3: estimate the quotient limb, then correct it at most twice.
         The loop exits early once r_hat >= base because then
         q_hat * v_next < base^2 <= r_hat << limb_bits always holds. *)
      let numerator = (u.(j + n) lsl limb_bits) lor u.(j + n - 1) in
      let q_hat = ref (numerator / v_top) in
      let r_hat = ref (numerator mod v_top) in
      let adjusting = ref true in
      while !adjusting do
        if
          !q_hat >= base
          || !q_hat * v_next > (!r_hat lsl limb_bits) lor u.(j + n - 2)
        then begin
          decr q_hat;
          r_hat := !r_hat + v_top;
          if !r_hat >= base then adjusting := false
        end
        else adjusting := false
      done;
      (* D4: multiply and subtract. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!q_hat * v.(i)) + !carry in
        carry := p lsr limb_bits;
        let d = u.(j + i) - (p land limb_mask) - !borrow in
        if d < 0 then begin
          u.(j + i) <- d + base;
          borrow := 1
        end
        else begin
          u.(j + i) <- d;
          borrow := 0
        end
      done;
      let d = u.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* D6: rare over-subtraction; add the divisor back once. *)
        u.(j + n) <- d + base;
        decr q_hat;
        let carry2 = ref 0 in
        for i = 0 to n - 1 do
          let s = u.(j + i) + v.(i) + !carry2 in
          u.(j + i) <- s land limb_mask;
          carry2 := s lsr limb_bits
        done;
        u.(j + n) <- (u.(j + n) + !carry2) land limb_mask
      end
      else u.(j + n) <- d;
      q.(j) <- !q_hat
    done;
    let r = normalise (Array.sub u 0 n) in
    (normalise q, shift_right r shift)
  end

let rem a b = snd (divmod a b)

let mod_add a b ~modulus =
  let s = add a b in
  if compare s modulus >= 0 then sub s modulus else s

let mod_sub a b ~modulus =
  if compare a b >= 0 then sub a b else sub (add a modulus) b

let mod_mul a b ~modulus = rem (mul a b) modulus

let mod_pow ~base:b ~exponent ~modulus =
  if is_zero modulus then raise Division_by_zero;
  if equal modulus one then zero
  else begin
    let b = rem b modulus in
    let bits = bit_length exponent in
    let acc = ref one in
    for i = bits - 1 downto 0 do
      acc := mod_mul !acc !acc ~modulus;
      if test_bit exponent i then acc := mod_mul !acc b ~modulus
    done;
    !acc
  end

(* Montgomery (REDC) exponentiation for odd moduli. Working representation:
   fixed-width little-endian limb arrays of k = limbs(m), with R = base^k. *)
module Montgomery = struct
  type ctx = {
    m : int array; (* k limbs *)
    k : int;
    m_prime : int; (* -m^-1 mod 2^limb_bits *)
    modulus : t;
  }

  (* Newton iteration doubles the number of correct low bits each step. *)
  let neg_inverse_limb m0 =
    let x = ref 1 in
    for _ = 1 to 5 do
      x := !x * (2 - (m0 * !x)) land limb_mask
    done;
    (base - !x) land limb_mask

  let create modulus =
    let k = Array.length modulus in
    { m = modulus; k; m_prime = neg_inverse_limb modulus.(0); modulus }

  (* REDC over a 2k-limb product held in [p] (length 2k + 1 for carries):
     result is p / R mod m, written as a fresh k-limb array. *)
  let redc ctx p =
    let k = ctx.k in
    for i = 0 to k - 1 do
      let u = p.(i) * ctx.m_prime land limb_mask in
      let carry = ref 0 in
      for j = 0 to k - 1 do
        let s = p.(i + j) + (u * ctx.m.(j)) + !carry in
        p.(i + j) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      (* propagate the carry above the window *)
      let j = ref (i + k) in
      while !carry <> 0 do
        let s = p.(!j) + !carry in
        p.(!j) <- s land limb_mask;
        carry := s lsr limb_bits;
        incr j
      done
    done;
    let out = Array.sub p k k in
    (* at most one final subtraction is needed *)
    let ge =
      let rec cmp i =
        if i < 0 then true
        else if out.(i) > ctx.m.(i) then true
        else if out.(i) < ctx.m.(i) then false
        else cmp (i - 1)
      in
      p.(2 * k) <> 0 || cmp (k - 1)
    in
    if ge then begin
      let borrow = ref 0 in
      for i = 0 to k - 1 do
        let d = out.(i) - ctx.m.(i) - !borrow in
        if d < 0 then begin
          out.(i) <- d + base;
          borrow := 1
        end
        else begin
          out.(i) <- d;
          borrow := 0
        end
      done
    end;
    out

  let mont_mul ctx a b =
    let k = ctx.k in
    let p = Array.make ((2 * k) + 1) 0 in
    for i = 0 to k - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to k - 1 do
        let s = p.(i + j) + (ai * b.(j)) + !carry in
        p.(i + j) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      p.(i + k) <- p.(i + k) + !carry
    done;
    redc ctx p

  let widen ctx v =
    let out = Array.make ctx.k 0 in
    Array.blit v 0 out 0 (Array.length v);
    out

  let pow ctx ~base:b ~exponent =
    (* to Montgomery domain: bR mod m *)
    let b_mont =
      widen ctx (rem (shift_left (rem b ctx.modulus) (limb_bits * ctx.k)) ctx.modulus)
    in
    let one_mont = widen ctx (rem (shift_left one (limb_bits * ctx.k)) ctx.modulus) in
    let acc = ref one_mont in
    let bits = bit_length exponent in
    for i = bits - 1 downto 0 do
      acc := mont_mul ctx !acc !acc;
      if test_bit exponent i then acc := mont_mul ctx !acc b_mont
    done;
    (* leave the domain: REDC(acc * 1) = acc / R *)
    let p = Array.make ((2 * ctx.k) + 1) 0 in
    Array.blit !acc 0 p 0 ctx.k;
    normalise (redc ctx p)
end

let mod_pow_fast ~base:b ~exponent ~modulus =
  if is_zero modulus then raise Division_by_zero;
  if equal modulus one then zero
  else if is_even modulus || Array.length modulus < 2 then
    mod_pow ~base:b ~exponent ~modulus
  else Montgomery.pow (Montgomery.create modulus) ~base:b ~exponent

let gcd a b =
  let rec go a b = if is_zero b then a else go b (rem a b) in
  if compare a b >= 0 then go a b else go b a

(* Extended Euclid over naturals, tracking Bezout coefficient signs by hand
   since the representation is unsigned. Invariant: r_i = s_i * c_i * a
   (mod modulus), with c_i >= 0 and s_i in {-1, +1}. *)
let mod_inverse a ~modulus =
  if is_zero modulus then raise Division_by_zero;
  let a = rem a modulus in
  if is_zero a then None
  else begin
    let rec go r0 c0 s0 r1 c1 s1 =
      if is_zero r1 then
        if equal r0 one then
          Some (if s0 > 0 then rem c0 modulus else mod_sub zero (rem c0 modulus) ~modulus)
        else None
      else begin
        let quotient, r2 = divmod r0 r1 in
        let qc1 = mul quotient c1 in
        let c2, s2 =
          if s0 = s1 then
            if compare c0 qc1 >= 0 then (sub c0 qc1, s0) else (sub qc1 c0, -s1)
          else (add c0 qc1, s0)
        in
        go r1 c1 s1 r2 c2 s2
      end
    in
    go modulus zero 1 a one 1
  end

(* Local hex helpers so this library stays dependency-free. *)
let hex_digits = "0123456789abcdef"

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Nat.of_hex: invalid character"

let of_bytes_be b =
  let n = Bytes.length b in
  let acc = ref zero in
  for i = 0 to n - 1 do
    acc := add (shift_left !acc 8) (of_int (Char.code (Bytes.get b i)))
  done;
  !acc

let to_bytes_be ?size a =
  let nbytes = max 1 ((bit_length a + 7) / 8) in
  let out_size =
    match size with
    | None -> nbytes
    | Some s ->
      if s < nbytes then invalid_arg "Nat.to_bytes_be: size too small" else s
  in
  let out = Bytes.make out_size '\000' in
  let v = ref a in
  let i = ref (out_size - 1) in
  while not (is_zero !v) do
    let byte =
      match to_int (rem !v (of_int 256)) with
      | Some x -> x
      | None -> assert false
    in
    Bytes.set out !i (Char.chr byte);
    v := shift_right !v 8;
    decr i
  done;
  out

let of_hex s =
  let s =
    if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
      String.sub s 2 (String.length s - 2)
    else s
  in
  let s = if String.length s mod 2 = 1 then "0" ^ s else s in
  let n = String.length s / 2 in
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))
  done;
  of_bytes_be b

(* bounds: out has 2n bytes, i < n, and hex_digits is indexed by nibbles
   < 16; unsafe_to_string transfers ownership of a buffer that never
   escapes before the conversion.
   cross-check: hex round-trips against of_hex and the qcheck arithmetic
   properties in test/test_bignum.ml. *)
let to_hex a =
  let b = to_bytes_be a in
  let n = Bytes.length b in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let v = Char.code (Bytes.get b i) in
    Bytes.set out (2 * i) hex_digits.[v lsr 4];
    Bytes.set out ((2 * i) + 1) hex_digits.[v land 0xf]
  done;
  Bytes.unsafe_to_string out

let of_decimal s =
  if String.length s = 0 then invalid_arg "Nat.of_decimal: empty";
  let ten = of_int 10 in
  let acc = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' ->
        acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
      | '_' -> ()
      | _ -> invalid_arg "Nat.of_decimal: invalid character")
    s;
  !acc

let to_decimal a =
  if is_zero a then "0"
  else begin
    let ten = of_int 10 in
    let buf = Buffer.create 32 in
    let rec go v =
      if not (is_zero v) then begin
        let q, r = divmod v ten in
        go q;
        let d = match to_int r with Some x -> x | None -> assert false in
        Buffer.add_char buf (Char.chr (Char.code '0' + d))
      end
    in
    go a;
    Buffer.contents buf
  end

let random_below rng ~bound =
  if is_zero bound then invalid_arg "Nat.random_below: zero bound";
  let bits = bit_length bound in
  let nbytes = (bits + 7) / 8 in
  let top_mask = if bits mod 8 = 0 then 0xff else (1 lsl (bits mod 8)) - 1 in
  let rec try_once () =
    let b = Ra_sim.Prng.bytes rng nbytes in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) land top_mask));
    let v = of_bytes_be b in
    if compare v bound < 0 then v else try_once ()
  in
  try_once ()

let pp fmt a = Format.fprintf fmt "0x%s" (to_hex a)
