#!/bin/sh
# Real-socket kill -9 gate for the attestation control plane.
#
# Two campaigns with the same (devices, seed, reports) plan:
#   reference — server runs undisturbed start to finish;
#   victim    — the server is kill -9'd mid-ingest and restarted over the
#               same journal directory, while the load generator rides out
#               the outage with reconnect + backoff.
# The gate requires the victim's recovered fleet Merkle root and accepted
# count to be bit-identical to the reference, and that the restart really
# replayed journaled reports (recovered > 0 — i.e. the kill landed inside
# the ingest window, not before or after it). The kill instant is wall
# clock, so a whole attempt is retried a few times if the window is
# missed; the root comparison itself is exact, never tolerance-based.
set -eu

RATOOL=_build/default/bin/ratool.exe
PORT_REF=7461
PORT_KILL=7462
DEVICES=200
REPORTS=10
SEED=7
WORK=_build/server-kill-gate

[ -x "$RATOOL" ] || { echo "server_kill_gate: run 'dune build' first" >&2; exit 2; }
rm -rf "$WORK"
mkdir -p "$WORK"

root_of() { sed -n 's/.*root=\([0-9a-f]*\).*/\1/p' "$1" | head -n 1; }
field_of() { sed -n "s/.*$2=\([0-9]*\).*/\1/p" "$1" | head -n 1; }

loadgen() {
  port=$1; log=$2
  "$RATOOL" loadgen --port "$port" --devices $DEVICES --seed $SEED \
    --reports $REPORTS >"$log" 2>&1
}

# --- reference: unkilled run ---------------------------------------------
"$RATOOL" serve --port $PORT_REF --dir "$WORK/ref" --devices $DEVICES \
  --seed $SEED >"$WORK/ref-server.log" 2>&1 &
REF_PID=$!
trap 'kill -9 $REF_PID 2>/dev/null || true; kill -9 ${KILL_PID:-0} 2>/dev/null || true' EXIT

loadgen $PORT_REF "$WORK/ref-loadgen.log"
REF_ROOT=$(root_of "$WORK/ref-loadgen.log")
REF_ACCEPTED=$(field_of "$WORK/ref-loadgen.log" accepted)
kill -9 $REF_PID 2>/dev/null || true
wait $REF_PID 2>/dev/null || true

[ -n "$REF_ROOT" ] || { echo "server_kill_gate: no root in reference run" >&2; exit 1; }
echo "reference: accepted=$REF_ACCEPTED root=$REF_ROOT"

# --- victim: kill -9 mid-ingest, restart, same journal -------------------
attempt=1
while [ $attempt -le 3 ]; do
  rm -rf "$WORK/victim"
  "$RATOOL" serve --port $PORT_KILL --dir "$WORK/victim" --devices $DEVICES \
    --seed $SEED >"$WORK/victim-server1.log" 2>&1 &
  KILL_PID=$!

  loadgen $PORT_KILL "$WORK/victim-loadgen.log" &
  LOADGEN_PID=$!

  # let ingest start, then murder the server with reports still in flight
  sleep 1
  kill -9 $KILL_PID 2>/dev/null || true
  wait $KILL_PID 2>/dev/null || true

  # restart over the same journal: recovery is Journal.restart, not a
  # fresh start — the loadgen is still retrying against the dead port
  "$RATOOL" serve --port $PORT_KILL --dir "$WORK/victim" --devices $DEVICES \
    --seed $SEED >"$WORK/victim-server2.log" 2>&1 &
  KILL_PID=$!

  if ! wait $LOADGEN_PID; then
    echo "server_kill_gate: loadgen failed across the restart" >&2
    cat "$WORK/victim-loadgen.log" >&2
    exit 1
  fi
  kill -9 $KILL_PID 2>/dev/null || true
  wait $KILL_PID 2>/dev/null || true

  RECOVERED=$(field_of "$WORK/victim-loadgen.log" recovered)
  if [ "${RECOVERED:-0}" -gt 0 ]; then
    break
  fi
  echo "attempt $attempt: kill missed the ingest window (recovered=0), retrying"
  attempt=$((attempt + 1))
done

[ "${RECOVERED:-0}" -gt 0 ] || {
  echo "server_kill_gate: never killed mid-ingest in 3 attempts" >&2
  exit 1
}

VICTIM_ROOT=$(root_of "$WORK/victim-loadgen.log")
VICTIM_ACCEPTED=$(field_of "$WORK/victim-loadgen.log" accepted)
echo "victim:    accepted=$VICTIM_ACCEPTED recovered=$RECOVERED root=$VICTIM_ROOT"

if [ "$VICTIM_ROOT" != "$REF_ROOT" ]; then
  echo "server_kill_gate: FLEET ROOT DIVERGED after kill -9 restart" >&2
  exit 1
fi
if [ "$VICTIM_ACCEPTED" != "$REF_ACCEPTED" ]; then
  echo "server_kill_gate: accepted count diverged ($VICTIM_ACCEPTED vs $REF_ACCEPTED)" >&2
  exit 1
fi
echo "server_kill_gate: OK (root bit-identical, $RECOVERED reports replayed from the journal)"
