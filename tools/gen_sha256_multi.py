#!/usr/bin/env python3
"""Emit lib/crypto/sha256_multi.ml: interleaved multi-way SHA-256.

The compress kernels are straight-line generated code because the whole
point is instruction-level parallelism: independent dependency chains from
N blocks woven into one instruction stream, no closures or per-round
control flow for the compiler to spill around.  The winning formulation
(picked empirically against ~20 variants, see DESIGN.md) is:

  - rounds grouped 8 at a time inside a tail-recursive loop carrying the
    8*N state words as arguments, so state lives in registers and the
    a..h rotation is argument renaming, while code size stays well inside
    the L1 I-cache (a fully unrolled 2-lane kernel is ~55 KB and loses);
  - the 32-bit mask threaded through as an argument so it sits in a
    register instead of being rematerialised as a 10-byte movabsq;
  - message schedule fully unrolled per lane over a 16-name rolling
    window (pure schedule words stay in registers) storing w[i]+K[i], so
    each round does a single array load and no constant load;
  - 3-op ch (g ^ (e & (f ^ g))) and 4-op maj (((a^b)&c)^(a&b));
  - deferred masking: state words are only masked inside the rotation
    dup and at the final store -- low 32 bits are correct throughout
    because +, lxor, land, lor never propagate high bits downward.

Run from the repo root:  python3 tools/gen_sha256_multi.py
"""

import os

K = [
0x428a2f98,0x71374491,0xb5c0fbcf,0xe9b5dba5,0x3956c25b,0x59f111f1,
0x923f82a4,0xab1c5ed5,0xd807aa98,0x12835b01,0x243185be,0x550c7dc3,
0x72be5d74,0x80deb1fe,0x9bdc06a7,0xc19bf174,0xe49b69c1,0xefbe4786,
0x0fc19dc6,0x240ca1cc,0x2de92c6f,0x4a7484aa,0x5cb0a9dc,0x76f988da,
0x983e5152,0xa831c66d,0xb00327c8,0xbf597fc7,0xc6e00bf3,0xd5a79147,
0x06ca6351,0x14292967,0x27b70a85,0x2e1b2138,0x4d2c6dfc,0x53380d13,
0x650a7354,0x766a0abb,0x81c2c92e,0x92722c85,0xa2bfe8a1,0xa81a664b,
0xc24b8b70,0xc76c51a3,0xd192e819,0xd6990624,0xf40e3585,0x106aa070,
0x19a4c116,0x1e376c08,0x2748774c,0x34b0bcb5,0x391c0cb3,0x4ed8aa4a,
0x5b9cca4f,0x682e6ff3,0x748f82ee,0x78a5636f,0x84c87814,0x8cc70208,
0x90befffa,0xa4506ceb,0xbef9a3f7,0xc67178f2]

GROUP = 8  # rounds per recursion step: best code-size / call-overhead point


def gen_compress(lanes):
    out = []
    w = out.append
    name = f"compress{lanes}"
    sts = " ".join(f"st{l}" for l in range(lanes))
    ws = " ".join(f"w{l}" for l in range(lanes))
    bs = " ".join(f"b{l} p{l}" for l in range(lanes))
    w(f"(* bounds: every unsafe access on a w<l> scratch uses a literal index in")
    w(f"   0..63 against the 64-word arrays digest_many allocates; every unsafe")
    w(f"   access on an st<l> state a literal index in 0..7 against 8-word")
    w(f"   arrays; and every unsafe_load32_be reads at p<l> + 4*i with i <= 15,")
    w(f"   inside the 64-byte block that digest_many's whole-block loop bound")
    w(f"   (p<l> + 64 <= length b<l>) guarantees. *)")
    w(f"let {name} {sts} {ws} {bs} =")
    w("  let msk = mask in")
    # Unrolled kw-preadded schedule per lane: pure window values in locals,
    # w[i] + K[i] stored so the rounds do one load and no constant.
    for l in range(lanes):
        for i in range(16):
            w(f"  let m{l}_{i} = Bytesutil.unsafe_load32_be b{l} (p{l} + {4*i}) in")
            w(f"  Array.unsafe_set w{l} {i} (m{l}_{i} + 0x{K[i]:08x});")
        names = [f"m{l}_{i}" for i in range(16)]
        for i in range(16, 64):
            v15 = names[(i - 15) % 16]
            v2 = names[(i - 2) % 16]
            v7 = names[(i - 7) % 16]
            v16 = names[(i - 16) % 16]
            w(f"  let x15 = dup {v15} and x2 = dup {v2} in")
            w(f"  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor ({v15} lsr 3)) land msk in")
            w(f"  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor ({v2} lsr 10)) land msk in")
            w(f"  let {v16} = ({v16} + s0 + {v7} + s1) land msk in")
            w(f"  Array.unsafe_set w{l} {i} ({v16} + 0x{K[i]:08x});")
    allv = " ".join(f"{v}{l}" for l in range(lanes) for v in "abcdefgh")
    w(f"  let rec go r msk {allv} =")
    w("    if r = 64 then begin")
    for l in range(lanes):
        for j, v in enumerate("abcdefgh"):
            w(f"      Array.unsafe_set st{l} {j} ((Array.unsafe_get st{l} {j} + {v}{l}) land msk);")
    w("    end")
    w("    else begin")
    vars_ = {l: [f"{v}{l}" for v in "abcdefgh"] for l in range(lanes)}
    for rr in range(GROUP):
        for l in range(lanes):
            a, b, c, d, e, f, g, h = vars_[l]
            w(f"      let ee = {e} land msk in")
            w("      let ee = ee lor (ee lsl 32) in")
            w("      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in")
            w(f"      let ch = {g} lxor ({e} land ({f} lxor {g})) in")
            w(f"      let t1 = {h} + s1 + ch + Array.unsafe_get w{l} (r + {rr}) in")
            w(f"      let aa = {a} land msk in")
            w("      let aa = aa lor (aa lsl 32) in")
            w("      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in")
            w(f"      let mj = (({a} lxor {b}) land {c}) lxor ({a} land {b}) in")
            w(f"      let {d} = {d} + t1 in")
            w(f"      let {h} = t1 + s0 + mj in")
        for l in range(lanes):
            vars_[l] = [vars_[l][7]] + vars_[l][:7]
    army = " ".join(vars_[l][j] for l in range(lanes) for j in range(8))
    w(f"      go (r + {GROUP}) msk {army}")
    w("    end")
    w("  in")
    loads = " ".join(
        f"(Array.unsafe_get st{l} {j})" for l in range(lanes) for j in range(8))
    w(f"  go 0 msk {loads}")
    return "\n".join(out)


HEADER = '''(* Interleaved multi-way SHA-256: the batch counterpart to Sha256.

   GENERATED FILE -- emitted by tools/gen_sha256_multi.py. Edit the
   generator and re-run it (python3 tools/gen_sha256_multi.py) instead of
   editing this file by hand; the kernels below are deliberately
   straight-line so that N independent compress dependency chains are
   woven through one instruction stream and hide each other's latency.
   Rationale for the exact formulation lives in the generator's docstring
   and DESIGN.md's performance notes.

   cross-check: Ra_crypto.Checked.sha256_many keeps a bounds-checked
   one-shot reference; test/test_crypto.ml qcheck-diffs every lane
   configuration of digest_many against it (ragged lengths, odd batches,
   block-boundary sizes). *)

let mask = 0xFFFFFFFF

(* Same rotation trick as Sha256: the 32-bit word duplicated into bits
   32..62 turns rotr into one logical shift; every rotation count used is
   >= 2 so the copy of bit 31 that falls off the 63-bit int never lands
   in an extracted window. *)
let dup x = x lor (x lsl 32)

(* ralint: allow P2 -- SHA-256 initial state, read-only after init. *)
let iv =
  [|
    0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
    0x1f83d9ab; 0x5be0cd19;
  |]
'''

TAIL = '''
(* Single-lane tail once lockstep runs out: remaining whole blocks, then
   FIPS 180-4 padding (0x80, zeros, 64-bit big-endian bit length) in one
   or two synthesised blocks. *)
let finish_lane st w msg pos =
  let len = Bytes.length msg in
  let pos = ref pos in
  while len - !pos >= 64 do
    Sha256.compress_words st w msg !pos;
    pos := !pos + 64
  done;
  let rem = len - !pos in
  let tail_blocks = if rem + 9 <= 64 then 1 else 2 in
  let tail = Bytes.make (64 * tail_blocks) '\\000' in
  Bytes.blit msg !pos tail 0 rem;
  Bytes.set tail rem '\\x80';
  Bytesutil.store64_be tail ((64 * tail_blocks) - 8) (Int64.of_int (8 * len));
  Sha256.compress_words st w tail 0;
  if tail_blocks = 2 then Sha256.compress_words st w tail 64;
  let out = Bytes.create 32 in
  for j = 0 to 7 do
    Bytesutil.store32_be out (4 * j) st.(j)
  done;
  out

let digest_pair st0 st1 w0 w1 out i m0 m1 =
  Array.blit iv 0 st0 0 8;
  Array.blit iv 0 st1 0 8;
  let common = min (Bytes.length m0 / 64) (Bytes.length m1 / 64) in
  for b = 0 to common - 1 do
    compress2 st0 st1 w0 w1 m0 (64 * b) m1 (64 * b)
  done;
  out.(i) <- finish_lane st0 w0 m0 (64 * common);
  out.(i + 1) <- finish_lane st1 w1 m1 (64 * common)

let digest_quad st0 st1 st2 st3 w0 w1 w2 w3 out i m0 m1 m2 m3 =
  Array.blit iv 0 st0 0 8;
  Array.blit iv 0 st1 0 8;
  Array.blit iv 0 st2 0 8;
  Array.blit iv 0 st3 0 8;
  let common =
    min
      (min (Bytes.length m0 / 64) (Bytes.length m1 / 64))
      (min (Bytes.length m2 / 64) (Bytes.length m3 / 64))
  in
  for b = 0 to common - 1 do
    compress4 st0 st1 st2 st3 w0 w1 w2 w3 m0 (64 * b) m1 (64 * b) m2 (64 * b)
      m3 (64 * b)
  done;
  out.(i) <- finish_lane st0 w0 m0 (64 * common);
  out.(i + 1) <- finish_lane st1 w1 m1 (64 * common);
  out.(i + 2) <- finish_lane st2 w2 m2 (64 * common);
  out.(i + 3) <- finish_lane st3 w3 m3 (64 * common)

let digest_many ?(lanes = 2) msgs =
  (match lanes with
  | 1 | 2 | 4 -> ()
  | _ -> invalid_arg "Sha256_multi.digest_many: lanes must be 1, 2 or 4");
  let n = Array.length msgs in
  let out = Array.make n Bytes.empty in
  if lanes = 1 then
    for i = 0 to n - 1 do
      out.(i) <- Sha256.digest msgs.(i)
    done
  else begin
    let st0 = Array.make 8 0 and st1 = Array.make 8 0 in
    let w0 = Array.make 64 0 and w1 = Array.make 64 0 in
    let i = ref 0 in
    if lanes = 4 then begin
      let st2 = Array.make 8 0 and st3 = Array.make 8 0 in
      let w2 = Array.make 64 0 and w3 = Array.make 64 0 in
      while !i + 4 <= n do
        digest_quad st0 st1 st2 st3 w0 w1 w2 w3 out !i msgs.(!i)
          msgs.(!i + 1)
          msgs.(!i + 2)
          msgs.(!i + 3);
        i := !i + 4
      done
    end;
    while !i + 2 <= n do
      digest_pair st0 st1 w0 w1 out !i msgs.(!i) msgs.(!i + 1);
      i := !i + 2
    done;
    if !i < n then out.(!i) <- Sha256.digest msgs.(!i)
  end;
  out
'''


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(root, "lib", "crypto", "sha256_multi.ml")
    parts = [HEADER, gen_compress(2), "", gen_compress(4), TAIL]
    with open(path, "w") as f:
        f.write("\n".join(parts))
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
