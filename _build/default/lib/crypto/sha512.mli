(** SHA-512 (FIPS 180-4), implemented from scratch in pure OCaml. *)

include Digest_intf.S
