module Make (H : Digest_intf.S) = struct
  type ctx = { inner : H.ctx; key_block : Bytes.t }

  let normalise_key key =
    let block = Bytes.make H.block_size '\000' in
    if Bytes.length key > H.block_size then begin
      let hashed = H.digest key in
      Bytes.blit hashed 0 block 0 (Bytes.length hashed)
    end
    else Bytes.blit key 0 block 0 (Bytes.length key);
    block

  let init ~key =
    let key_block = normalise_key key in
    let ipad = Bytes.map (fun c -> Char.chr (Char.code c lxor 0x36)) key_block in
    let inner = H.init () in
    H.update inner ipad ~pos:0 ~len:H.block_size;
    { inner; key_block }

  let update t src ~pos ~len = H.update t.inner src ~pos ~len

  let finalize t =
    let inner_digest = H.finalize t.inner in
    let opad = Bytes.map (fun c -> Char.chr (Char.code c lxor 0x5c)) t.key_block in
    let outer = H.init () in
    H.update outer opad ~pos:0 ~len:H.block_size;
    H.update outer inner_digest ~pos:0 ~len:(Bytes.length inner_digest);
    H.finalize outer

  let mac ~key msg =
    let t = init ~key in
    update t msg ~pos:0 ~len:(Bytes.length msg);
    finalize t

  let verify ~key ~tag msg = Bytesutil.constant_time_equal tag (mac ~key msg)
end

module Sha256 = Make (Sha256)
module Sha512 = Make (Sha512)
