(** BLAKE2s (RFC 7693), implemented from scratch in pure OCaml.

    The {!Digest_intf.S} part is unkeyed BLAKE2s-256. BLAKE2s is the variant
    the paper singles out as well suited to 32-bit embedded systems. *)

include Digest_intf.S

val init_keyed : key:Bytes.t -> size:int -> ctx
(** [init_keyed ~key ~size] starts a keyed hash producing [size] bytes.
    [key] must be at most 32 bytes, [size] in [\[1, 32\]]. *)

val mac : key:Bytes.t -> Bytes.t -> Bytes.t
(** One-shot 32-byte keyed digest. *)

val digest_sized : size:int -> Bytes.t -> Bytes.t
(** One-shot unkeyed digest of [size] bytes, [size] in [\[1, 32\]]. *)
