(** Streaming keyed-integrity context, generic over the hash choice.

    The measurement process absorbs prover memory block by block; this
    wrapper selects HMAC for the SHA family and the native keyed mode for
    the BLAKE2 family (its designed-in MAC). *)

type t

val create : Algo.hash -> key:Bytes.t -> t

val update : t -> Bytes.t -> unit

val update_sub : t -> Bytes.t -> pos:int -> len:int -> unit

val finalize : t -> Bytes.t
(** The context must not be used afterwards. *)

val mac : Algo.hash -> key:Bytes.t -> Bytes.t -> Bytes.t
(** One-shot convenience equal to create/update/finalize. *)
