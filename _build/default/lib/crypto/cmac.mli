(** AES-128 CMAC (NIST SP 800-38B): the block-cipher-based MAC family the
    paper's Section 2.4 cites (ISO 9797 MACs). CMAC fixes raw CBC-MAC's
    variable-length forgeries via the derived subkeys K1/K2. *)

val mac : key:Bytes.t -> Bytes.t -> Bytes.t
(** 16-byte tag over an arbitrary-length message under a 16-byte key. *)

val verify : key:Bytes.t -> tag:Bytes.t -> Bytes.t -> bool
(** Constant-time tag comparison. *)

val cbc_mac_raw : key:Bytes.t -> Bytes.t -> Bytes.t
(** Textbook zero-padded CBC-MAC — secure only for fixed-length messages;
    exposed to demonstrate the length-extension forgery in tests. *)
