type inner =
  | Hmac256 of Hmac.Sha256.ctx
  | Hmac512 of Hmac.Sha512.ctx
  | B2b of Blake2b.ctx
  | B2s of Blake2s.ctx

type t = inner

let create hash ~key =
  match hash with
  | Algo.SHA_256 -> Hmac256 (Hmac.Sha256.init ~key)
  | Algo.SHA_512 -> Hmac512 (Hmac.Sha512.init ~key)
  | Algo.BLAKE2b -> B2b (Blake2b.init_keyed ~key ~size:Blake2b.digest_size)
  | Algo.BLAKE2s -> B2s (Blake2s.init_keyed ~key ~size:Blake2s.digest_size)

let update_sub t src ~pos ~len =
  match t with
  | Hmac256 c -> Hmac.Sha256.update c src ~pos ~len
  | Hmac512 c -> Hmac.Sha512.update c src ~pos ~len
  | B2b c -> Blake2b.update c src ~pos ~len
  | B2s c -> Blake2s.update c src ~pos ~len

let update t src = update_sub t src ~pos:0 ~len:(Bytes.length src)

let finalize = function
  | Hmac256 c -> Hmac.Sha256.finalize c
  | Hmac512 c -> Hmac.Sha512.finalize c
  | B2b c -> Blake2b.finalize c
  | B2s c -> Blake2s.finalize c

let mac hash ~key msg =
  let t = create hash ~key in
  update t msg;
  finalize t
