(** HKDF (RFC 5869) over HMAC-SHA-256, from scratch.

    Used to derive per-device attestation keys from a fleet master secret,
    so compromising one prover's key never exposes a sibling's. *)

val extract : ?salt:Bytes.t -> ikm:Bytes.t -> unit -> Bytes.t
(** [extract ~salt ~ikm] is the 32-byte pseudorandom key. An absent salt is
    the RFC's zero-filled default. *)

val expand : prk:Bytes.t -> info:Bytes.t -> length:int -> Bytes.t
(** [expand ~prk ~info ~length] produces [length] bytes of output keying
    material. Raises [Invalid_argument] if [length] exceeds [255 * 32] or
    is not positive. *)

val derive : ?salt:Bytes.t -> ikm:Bytes.t -> info:Bytes.t -> length:int -> unit -> Bytes.t
(** Extract-then-expand convenience. *)
