let hash_len = 32

let extract ?salt ~ikm () =
  let salt = match salt with Some s -> s | None -> Bytes.make hash_len '\000' in
  Hmac.Sha256.mac ~key:salt ikm

let expand ~prk ~info ~length =
  if length <= 0 || length > 255 * hash_len then
    invalid_arg "Hkdf.expand: length out of range";
  let blocks = (length + hash_len - 1) / hash_len in
  let out = Buffer.create length in
  let previous = ref Bytes.empty in
  for i = 1 to blocks do
    let ctx = Hmac.Sha256.init ~key:prk in
    Hmac.Sha256.update ctx !previous ~pos:0 ~len:(Bytes.length !previous);
    Hmac.Sha256.update ctx info ~pos:0 ~len:(Bytes.length info);
    let counter = Bytes.make 1 (Char.chr i) in
    Hmac.Sha256.update ctx counter ~pos:0 ~len:1;
    let t = Hmac.Sha256.finalize ctx in
    previous := t;
    Buffer.add_bytes out t
  done;
  Bytes.sub (Buffer.to_bytes out) 0 length

let derive ?salt ~ikm ~info ~length () =
  expand ~prk:(extract ?salt ~ikm ()) ~info ~length
