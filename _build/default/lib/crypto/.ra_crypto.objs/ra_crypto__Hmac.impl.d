lib/crypto/hmac.ml: Bytes Bytesutil Char Digest_intf Sha256 Sha512
