lib/crypto/mac_stream.mli: Algo Bytes
