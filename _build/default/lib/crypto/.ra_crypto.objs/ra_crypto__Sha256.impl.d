lib/crypto/sha256.ml: Array Bytes Bytesutil Int64
