lib/crypto/blake2b.ml: Array Bytes Bytesutil Int64
