lib/crypto/sha512.mli: Digest_intf
