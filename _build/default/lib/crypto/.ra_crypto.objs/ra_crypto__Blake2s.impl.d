lib/crypto/blake2s.ml: Array Bytes Bytesutil
