lib/crypto/cmac.ml: Aes Bytes Bytesutil Char
