lib/crypto/bytesutil.mli: Bytes
