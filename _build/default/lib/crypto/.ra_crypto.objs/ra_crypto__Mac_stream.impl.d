lib/crypto/mac_stream.ml: Algo Blake2b Blake2s Bytes Hmac
