lib/crypto/sha256.mli: Digest_intf
