lib/crypto/blake2b.mli: Bytes Digest_intf
