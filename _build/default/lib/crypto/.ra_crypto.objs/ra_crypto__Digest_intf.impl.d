lib/crypto/digest_intf.ml: Bytes
