lib/crypto/algo.ml: Blake2b Blake2s Digest_intf Hmac Sha256 Sha512 String
