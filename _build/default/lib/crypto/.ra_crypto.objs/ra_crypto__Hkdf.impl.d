lib/crypto/hkdf.ml: Buffer Bytes Char Hmac
