lib/crypto/bytesutil.ml: Bytes Char Int64 String
