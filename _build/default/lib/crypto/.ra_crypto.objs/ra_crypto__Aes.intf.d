lib/crypto/aes.mli: Bytes
