lib/crypto/aes.ml: Array Bytes Char
