lib/crypto/hmac.mli: Bytes Digest_intf Sha256 Sha512
