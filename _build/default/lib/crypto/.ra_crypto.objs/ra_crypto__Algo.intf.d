lib/crypto/algo.mli: Bytes Digest_intf
