lib/crypto/sha512.ml: Array Bytes Bytesutil Int64
