lib/crypto/cmac.mli: Bytes
