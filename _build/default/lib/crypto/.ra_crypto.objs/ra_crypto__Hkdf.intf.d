lib/crypto/hkdf.mli: Bytes
