lib/crypto/blake2s.mli: Bytes Digest_intf
