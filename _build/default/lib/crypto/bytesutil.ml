let hex_digits = "0123456789abcdef"

let to_hex b =
  let n = Bytes.length b in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let v = Char.code (Bytes.unsafe_get b i) in
    Bytes.unsafe_set out (2 * i) hex_digits.[v lsr 4];
    Bytes.unsafe_set out ((2 * i) + 1) hex_digits.[v land 0xf]
  done;
  Bytes.unsafe_to_string out

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Bytesutil.of_hex: invalid character"

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Bytesutil.of_hex: odd length";
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    Bytes.unsafe_set out i
      (Char.unsafe_chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))
  done;
  out

let xor a b =
  let n = Bytes.length a in
  if Bytes.length b <> n then invalid_arg "Bytesutil.xor: length mismatch";
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set out i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get a i) lxor Char.code (Bytes.unsafe_get b i)))
  done;
  out

let constant_time_equal a b =
  let n = Bytes.length a in
  if Bytes.length b <> n then false
  else begin
    let acc = ref 0 in
    for i = 0 to n - 1 do
      acc := !acc lor (Char.code (Bytes.unsafe_get a i) lxor Char.code (Bytes.unsafe_get b i))
    done;
    !acc = 0
  end

let byte b i = Char.code (Bytes.unsafe_get b i)

let load32_be b i =
  (byte b i lsl 24) lor (byte b (i + 1) lsl 16) lor (byte b (i + 2) lsl 8)
  lor byte b (i + 3)

let store32_be b i v =
  Bytes.unsafe_set b i (Char.unsafe_chr ((v lsr 24) land 0xff));
  Bytes.unsafe_set b (i + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set b (i + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set b (i + 3) (Char.unsafe_chr (v land 0xff))

let load32_le b i =
  byte b i lor (byte b (i + 1) lsl 8) lor (byte b (i + 2) lsl 16)
  lor (byte b (i + 3) lsl 24)

let store32_le b i v =
  Bytes.unsafe_set b i (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set b (i + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set b (i + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set b (i + 3) (Char.unsafe_chr ((v lsr 24) land 0xff))

let load64_be b i =
  let hi = Int64.of_int (load32_be b i) in
  let lo = Int64.of_int (load32_be b (i + 4)) in
  Int64.logor (Int64.shift_left hi 32) lo

let store64_be b i v =
  store32_be b i (Int64.to_int (Int64.shift_right_logical v 32) land 0xFFFFFFFF);
  store32_be b (i + 4) (Int64.to_int v land 0xFFFFFFFF)

let load64_le b i =
  let lo = Int64.of_int (load32_le b i) in
  let hi = Int64.of_int (load32_le b (i + 4)) in
  Int64.logor (Int64.shift_left hi 32) lo

let store64_le b i v =
  store32_le b i (Int64.to_int v land 0xFFFFFFFF);
  store32_le b (i + 4) (Int64.to_int (Int64.shift_right_logical v 32) land 0xFFFFFFFF)
