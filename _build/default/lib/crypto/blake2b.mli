(** BLAKE2b (RFC 7693), implemented from scratch in pure OCaml.

    The {!Digest_intf.S} part is unkeyed BLAKE2b-512. The extra entry points
    expose the keyed mode (BLAKE2's native MAC) and shorter digests, both of
    which matter for embedded provers. *)

include Digest_intf.S

val init_keyed : key:Bytes.t -> size:int -> ctx
(** [init_keyed ~key ~size] starts a keyed hash producing [size] bytes.
    [key] must be at most 64 bytes, [size] in [\[1, 64\]]. *)

val mac : key:Bytes.t -> Bytes.t -> Bytes.t
(** One-shot 64-byte keyed digest. *)

val digest_sized : size:int -> Bytes.t -> Bytes.t
(** One-shot unkeyed digest of [size] bytes, [size] in [\[1, 64\]]. *)
