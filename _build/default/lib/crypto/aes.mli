(** AES-128 block encryption (FIPS 197), from scratch.

    Only the forward cipher is implemented: it is all that CBC-MAC/CMAC —
    the paper's Section 2.4 "encryption (e.g., AES-CBC-MAC)" measurement
    option — requires. *)

type key

val expand_key : Bytes.t -> key
(** Key schedule for a 16-byte key. Raises [Invalid_argument] otherwise. *)

val encrypt_block : key -> Bytes.t -> Bytes.t
(** Encrypt one 16-byte block. Raises [Invalid_argument] on wrong size. *)

val block_size : int
(** 16. *)
