(** HMAC (RFC 2104 / FIPS 198-1), generic over any hash of this library. *)

module Make (H : Digest_intf.S) : sig
  type ctx

  val init : key:Bytes.t -> ctx
  (** Keys longer than the hash block size are hashed first, shorter keys
      zero-padded, per the HMAC specification. *)

  val update : ctx -> Bytes.t -> pos:int -> len:int -> unit

  val finalize : ctx -> Bytes.t
  (** Produces the [H.digest_size]-byte tag; the context is then dead. *)

  val mac : key:Bytes.t -> Bytes.t -> Bytes.t
  (** One-shot convenience. *)

  val verify : key:Bytes.t -> tag:Bytes.t -> Bytes.t -> bool
  (** Constant-time tag check. *)
end

module Sha256 : module type of Make (Sha256)
module Sha512 : module type of Make (Sha512)
