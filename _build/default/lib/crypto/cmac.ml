let block = Aes.block_size

(* left shift of a 16-byte string by one bit, MSB-first *)
let shift_left_1 b =
  let out = Bytes.create block in
  let carry = ref 0 in
  for i = block - 1 downto 0 do
    let v = (Char.code (Bytes.get b i) lsl 1) lor !carry in
    Bytes.set out i (Char.chr (v land 0xff));
    carry := v lsr 8
  done;
  (out, !carry)

let rb = 0x87

let derive_subkeys key =
  let l = Aes.encrypt_block key (Bytes.make block '\000') in
  let k1, msb = shift_left_1 l in
  if msb = 1 then
    Bytes.set k1 (block - 1) (Char.chr (Char.code (Bytes.get k1 (block - 1)) lxor rb));
  let k2, msb = shift_left_1 k1 in
  if msb = 1 then
    Bytes.set k2 (block - 1) (Char.chr (Char.code (Bytes.get k2 (block - 1)) lxor rb));
  (k1, k2)

let xor_into dst src =
  for i = 0 to block - 1 do
    Bytes.set dst i (Char.chr (Char.code (Bytes.get dst i) lxor Char.code (Bytes.get src i)))
  done

let mac ~key msg =
  let key = Aes.expand_key key in
  let k1, k2 = derive_subkeys key in
  let len = Bytes.length msg in
  let full_blocks = if len = 0 then 1 else (len + block - 1) / block in
  let last_complete = len > 0 && len mod block = 0 in
  let state = ref (Bytes.make block '\000') in
  for i = 0 to full_blocks - 2 do
    let chunk = Bytes.sub msg (i * block) block in
    xor_into chunk !state;
    state := Aes.encrypt_block key chunk
  done;
  let final = Bytes.make block '\000' in
  let offset = (full_blocks - 1) * block in
  let remaining = len - offset in
  if last_complete then begin
    Bytes.blit msg offset final 0 block;
    xor_into final k1
  end
  else begin
    if remaining > 0 then Bytes.blit msg offset final 0 remaining;
    Bytes.set final remaining '\x80';
    xor_into final k2
  end;
  xor_into final !state;
  Aes.encrypt_block key final

let verify ~key ~tag msg = Bytesutil.constant_time_equal tag (mac ~key msg)

let cbc_mac_raw ~key msg =
  let key = Aes.expand_key key in
  let len = Bytes.length msg in
  let blocks = max 1 ((len + block - 1) / block) in
  let state = ref (Bytes.make block '\000') in
  for i = 0 to blocks - 1 do
    let chunk = Bytes.make block '\000' in
    let have = min block (len - (i * block)) in
    if have > 0 then Bytes.blit msg (i * block) chunk 0 have;
    xor_into chunk !state;
    state := Aes.encrypt_block key chunk
  done;
  !state
