(** Arbitrary-precision natural numbers, from scratch.

    Values are immutable. The representation is an array of base-2^26 limbs,
    little-endian, with no leading zero limb. Sized for the RSA-4096 and
    ECDSA operations of the paper's Fig. 2 — correctness and clarity over
    raw speed. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** Raises [Invalid_argument] on negative input. *)

val to_int : t -> int option
(** [None] if the value does not fit in a native [int]. *)

val of_bytes_be : Bytes.t -> t
(** Big-endian, leading zeros allowed. *)

val to_bytes_be : ?size:int -> t -> Bytes.t
(** Minimal big-endian encoding, left-padded with zeros to [size] when
    given. Raises [Invalid_argument] if the value needs more than [size]
    bytes. *)

val of_hex : string -> t
val to_hex : t -> string

val of_decimal : string -> t
(** Parses a base-10 literal. Raises [Invalid_argument] on bad input. *)

val to_decimal : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_even : t -> bool

val bit_length : t -> int
(** 0 for zero; otherwise the index of the highest set bit plus one. *)

val test_bit : t -> int -> bool

val add : t -> t -> t

val sub : t -> t -> t
(** Raises [Invalid_argument] if the result would be negative. *)

val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [(quotient, remainder)]. Raises [Division_by_zero]. *)

val rem : t -> t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val mod_add : t -> t -> modulus:t -> t
(** Operands must already be reduced. *)

val mod_sub : t -> t -> modulus:t -> t
(** Operands must already be reduced. *)

val mod_mul : t -> t -> modulus:t -> t

val mod_pow : base:t -> exponent:t -> modulus:t -> t
(** Left-to-right square and multiply. Raises [Division_by_zero] for a zero
    modulus. *)

val mod_pow_fast : base:t -> exponent:t -> modulus:t -> t
(** Same result as {!mod_pow}; uses Montgomery (REDC) reduction when the
    modulus is odd (the RSA/ECDSA case), falling back to {!mod_pow}
    otherwise. Several times faster on RSA-sized moduli. *)

val mod_inverse : t -> modulus:t -> t option
(** Multiplicative inverse by extended Euclid; [None] if not coprime. *)

val gcd : t -> t -> t

val random_below : Ra_sim.Prng.t -> bound:t -> t
(** Uniform in [\[0, bound)] by rejection. [bound] must be positive. *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal with a [0x] prefix. *)
