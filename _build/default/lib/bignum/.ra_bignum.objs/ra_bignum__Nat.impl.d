lib/bignum/nat.ml: Array Buffer Bytes Char Format Int List Ra_sim String
