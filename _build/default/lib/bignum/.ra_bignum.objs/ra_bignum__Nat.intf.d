lib/bignum/nat.mli: Bytes Format Ra_sim
