(** The safety-critical application of the paper's Section 2.5: a periodic
    sensor-actuator task (the fire alarm) running alongside attestation.

    Each activation consumes CPU (sensing + decision), then writes fresh
    sample data into its data blocks. Writes to locked blocks stall until
    the block is released — the availability cost of memory locking. The
    module records activation latencies, deadline misses, stalled-write
    time, and the alarm reaction latency when a fire event is injected. *)

open Ra_sim

type config = {
  name : string;
  period : Timebase.t;
  execution : Timebase.t;  (** CPU demand per activation *)
  priority : int;
  deadline : Timebase.t option;  (** relative to activation *)
  data_blocks : int list;  (** blocks receiving sample data each activation *)
  write_bytes : int;  (** bytes written per data block per activation *)
  first_activation : Timebase.t;
}

val default_config : config
(** 1 s period, 2 ms execution, priority 10, 1 s deadline, no data blocks. *)

type t

val start : Engine.t -> Cpu.t -> Memory.t -> ?on_run:(unit -> unit) -> config -> t
(** Schedules periodic activations until {!stop}. [on_run] fires each time
    the application's compute phase completes — the hook a colluding malware
    payload uses (the paper's compromised time-critical application). *)

val stop : t -> unit
(** No further activations are scheduled; in-flight ones finish. *)

val activations : t -> int

val completions : t -> int

val latencies : t -> Stats.t
(** Activation-to-completion times (compute plus writes), in seconds. *)

val deadline_misses : t -> int

val blocked_ns : t -> Timebase.t
(** Total time activations spent stalled on locked blocks. *)

val declare_fire : t -> at:Timebase.t -> unit
(** Inject the Section 2.5 fire event. The alarm sounds when the first
    compute phase finishing after [at] completes. *)

val alarm_latency : t -> Timebase.t option
(** Fire-to-alarm delay, once both happened. *)
