open Ra_sim

type config = {
  name : string;
  period : Timebase.t;
  execution : Timebase.t;
  priority : int;
  deadline : Timebase.t option;
  data_blocks : int list;
  write_bytes : int;
  first_activation : Timebase.t;
}

let default_config =
  {
    name = "critical-app";
    period = Timebase.s 1;
    execution = Timebase.ms 2;
    priority = 10;
    deadline = Some (Timebase.s 1);
    data_blocks = [];
    write_bytes = 0;
    first_activation = Timebase.zero;
  }

type t = {
  engine : Engine.t;
  cpu : Cpu.t;
  memory : Memory.t;
  config : config;
  on_run : unit -> unit;
  mutable running : bool;
  mutable activation_count : int;
  mutable completion_count : int;
  latencies : Stats.t;
  mutable deadline_misses : int;
  mutable blocked_ns : int;
  mutable fire_at : Timebase.t option;
  mutable alarm_at : Timebase.t option;
}

let sample_payload t =
  (* Fresh content per activation so the write journal shows real churn. *)
  Bytes.make t.config.write_bytes (Char.chr (t.activation_count land 0xff))

(* Perform the activation's writes in order, stalling on locked blocks.
   [stalled_since] carries the instant the current stall began. *)
let rec perform_writes t ~activated ~payload = function
  | [] -> finish_activation t ~activated
  | block :: rest ->
    let now = Engine.now t.engine in
    (match Memory.write t.memory ~time:now ~block ~offset:0 payload with
    | Ok () -> perform_writes t ~activated ~payload rest
    | Error (Memory.Locked _) ->
      Engine.recordf t.engine ~tag:t.config.name
        "write to block %d stalled (locked)" block;
      let stall_started = now in
      (* One-shot resume on the next unlock of this block. *)
      let armed = ref true in
      Memory.subscribe_unlock t.memory (fun unlocked ->
          if !armed && unlocked = block then begin
            armed := false;
            t.blocked_ns <-
              t.blocked_ns + Timebase.sub (Engine.now t.engine) stall_started;
            perform_writes t ~activated ~payload (block :: rest)
          end))

and finish_activation t ~activated =
  let now = Engine.now t.engine in
  t.completion_count <- t.completion_count + 1;
  let latency = Timebase.sub now activated in
  Stats.add t.latencies (Timebase.to_seconds latency);
  (match t.config.deadline with
  | Some d when latency > d -> t.deadline_misses <- t.deadline_misses + 1
  | Some _ | None -> ())

let compute_done t ~activated =
  let now = Engine.now t.engine in
  (* Sensing happens during compute: the first compute phase that completes
     after the fire started is the one that detects it. *)
  (match (t.fire_at, t.alarm_at) with
  | Some fire, None when now >= fire ->
    t.alarm_at <- Some now;
    Engine.recordf t.engine ~tag:t.config.name "ALARM raised (fire at %s)"
      (Timebase.to_string fire)
  | Some _, (Some _ | None) | None, (Some _ | None) -> ());
  t.on_run ();
  let payload = sample_payload t in
  perform_writes t ~activated ~payload t.config.data_blocks

let rec activate t =
  if t.running then begin
    let activated = Engine.now t.engine in
    t.activation_count <- t.activation_count + 1;
    ignore
      (Cpu.submit t.cpu ~name:t.config.name ~priority:t.config.priority
         ~duration:t.config.execution
         ~on_complete:(fun () -> compute_done t ~activated)
         ());
    ignore
      (Engine.schedule_after t.engine ~delay:t.config.period (fun _ -> activate t))
  end

let start engine cpu memory ?(on_run = fun () -> ()) config =
  let t =
    {
      engine;
      cpu;
      memory;
      config;
      on_run;
      running = true;
      activation_count = 0;
      completion_count = 0;
      latencies = Stats.create ();
      deadline_misses = 0;
      blocked_ns = 0;
      fire_at = None;
      alarm_at = None;
    }
  in
  ignore
    (Engine.schedule engine ~at:config.first_activation (fun _ -> activate t));
  t

let stop t = t.running <- false

let activations t = t.activation_count
let completions t = t.completion_count
let latencies t = t.latencies
let deadline_misses t = t.deadline_misses
let blocked_ns t = t.blocked_ns

let declare_fire t ~at = t.fire_at <- Some at

let alarm_latency t =
  match (t.fire_at, t.alarm_at) with
  | Some fire, Some alarm -> Some (Timebase.sub alarm fire)
  | Some _, None | None, (Some _ | None) -> None
