open Ra_sim

type config = {
  seed : int;
  blocks : int;
  block_size : int;
  modeled_block_bytes : int;
  data_blocks : int list;
  cost : Cost_model.t;
  key : Bytes.t;
}

let default_config =
  {
    seed = 1;
    blocks = 64;
    block_size = 1024;
    modeled_block_bytes = 16 * 1024 * 1024;
    data_blocks = [];
    cost = Cost_model.odroid_xu4;
    key = Bytes.of_string "ra-safety-demo-attestation-key!!";
  }

type t = {
  engine : Engine.t;
  cpu : Cpu.t;
  memory : Memory.t;
  config : config;
}

(* The image is a pure function of the seed so prover and verifier can build
   identical copies without shipping the bytes around. *)
let firmware_image ~seed ~size =
  let rng = Prng.create ~seed:(seed lxor 0x46495257 (* "FIRW" *)) in
  Prng.bytes rng size

let create config =
  if config.blocks <= 0 then invalid_arg "Device.create: no blocks";
  List.iter
    (fun b ->
      if b < 0 || b >= config.blocks then
        invalid_arg "Device.create: data block out of range")
    config.data_blocks;
  let engine = Engine.create ~seed:config.seed () in
  let image = firmware_image ~seed:config.seed ~size:(config.blocks * config.block_size) in
  {
    engine;
    cpu = Cpu.create engine;
    memory = Memory.create ~image ~block_size:config.block_size;
    config;
  }

let attested_bytes t = t.config.blocks * t.config.modeled_block_bytes

let is_data_block t block = List.mem block t.config.data_blocks

let run ?until t = Engine.run ?until t.engine
