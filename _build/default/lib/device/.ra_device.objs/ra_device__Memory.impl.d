lib/device/memory.ml: Array Bytes List Ra_sim Timebase
