lib/device/cost_model.mli: Ra_crypto Ra_sim Timebase
