lib/device/app.mli: Cpu Engine Memory Ra_sim Stats Timebase
