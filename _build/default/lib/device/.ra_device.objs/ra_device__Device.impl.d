lib/device/device.ml: Bytes Cost_model Cpu Engine List Memory Prng Ra_sim
