lib/device/taskset.mli: Prng Ra_sim Timebase
