lib/device/taskset.ml: App Array Buffer Cost_model Cpu Device Engine Float Int List Printf Prng Ra_crypto Ra_sim Stats Timebase
