lib/device/cpu.ml: Engine Hashtbl Heap Option Ra_sim Timebase
