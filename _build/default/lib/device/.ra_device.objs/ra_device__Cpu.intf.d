lib/device/cpu.mli: Engine Ra_sim Timebase
