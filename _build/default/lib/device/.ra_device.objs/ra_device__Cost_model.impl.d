lib/device/cost_model.ml: Float Ra_crypto Ra_sim String Timebase
