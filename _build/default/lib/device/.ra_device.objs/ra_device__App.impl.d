lib/device/app.ml: Bytes Char Cpu Engine Memory Ra_sim Stats Timebase
