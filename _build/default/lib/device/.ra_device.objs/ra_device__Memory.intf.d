lib/device/memory.mli: Bytes Ra_sim Timebase
