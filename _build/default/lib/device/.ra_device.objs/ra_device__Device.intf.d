lib/device/device.mli: Bytes Cost_model Cpu Engine Memory Ra_sim Timebase
