(** A complete simulated prover: engine, CPU, lockable memory, cost model,
    attestation key, and the split between code and data regions. *)

open Ra_sim

type config = {
  seed : int;
  blocks : int;
  block_size : int;  (** real bytes per block, hashed by the actual MP *)
  modeled_block_bytes : int;
      (** bytes per block charged to the cost model — lets a 256 KiB real
          image stand in for the paper's gigabyte-scale attested memory *)
  data_blocks : int list;  (** indices treated as volatile data (Section 2.3) *)
  cost : Cost_model.t;
  key : Bytes.t;  (** attestation key shared with the verifier *)
}

val default_config : config
(** 64 blocks of 1 KiB real bytes, each modeling 16 MiB (1 GiB total,
    the Section 2.5 scenario), ODROID-XU4 costs, no data blocks. *)

type t = {
  engine : Engine.t;
  cpu : Cpu.t;
  memory : Memory.t;
  config : config;
}

val create : config -> t
(** The firmware image is generated deterministically from [seed]; the
    verifier reconstructs the same image from the same seed. *)

val firmware_image : seed:int -> size:int -> Bytes.t
(** The deterministic benign image generator shared with the verifier. *)

val attested_bytes : t -> int
(** Total modeled size: [blocks * modeled_block_bytes]. *)

val is_data_block : t -> int -> bool

val run : ?until:Timebase.t -> t -> unit
(** Convenience passthrough to {!Ra_sim.Engine.run}. *)
