(** Synthetic real-time task sets, for studying how attestation disturbs a
    whole workload rather than a single fire-alarm task.

    Utilizations are drawn with the UUniFast algorithm (the standard
    generator in schedulability studies), periods log-uniform over a range,
    and priorities rate-monotonic (shorter period, higher priority). *)

open Ra_sim

type task = {
  name : string;
  period : Timebase.t;
  execution : Timebase.t;
  priority : int;
}

val uunifast :
  Prng.t -> tasks:int -> total_utilization:float -> float array
(** Per-task utilizations summing to [total_utilization]. Raises
    [Invalid_argument] if [tasks < 1] or the utilization is not in (0, 1]. *)

val generate :
  Prng.t ->
  tasks:int ->
  total_utilization:float ->
  ?min_period:Timebase.t ->
  ?max_period:Timebase.t ->
  unit ->
  task list
(** Rate-monotonic priorities in [\[10, 10 + tasks)], higher for shorter
    periods. Default periods span 50 ms to 2 s. *)

type run_stats = {
  activations : int;
  completions : int;
  deadline_misses : int;
  worst_latency_s : float;
}

val run_under_attestation :
  seed:int ->
  tasks:task list ->
  scheme_atomic:bool ->
  horizon:Timebase.t ->
  attested_bytes:int ->
  run_stats
(** Run the task set (implicit deadlines = periods) on a device while one
    measurement of [attested_bytes] executes in the middle; atomic or
    interruptible per [scheme_atomic]. Aggregated over all tasks. *)

val schedulability_table : ?seed:int -> unit -> string
(** Deadline-miss counts vs total utilization for atomic vs interruptible
    attestation: the workload-level version of the Section 2.5 argument. *)
