open Ra_sim

type task = {
  name : string;
  period : Timebase.t;
  execution : Timebase.t;
  priority : int;
}

(* Bini & Buttazzo's UUniFast: uniform over the simplex of utilizations. *)
let uunifast rng ~tasks ~total_utilization =
  if tasks < 1 then invalid_arg "Taskset.uunifast: tasks < 1";
  if total_utilization <= 0. || total_utilization > 1. then
    invalid_arg "Taskset.uunifast: utilization out of (0, 1]";
  let out = Array.make tasks 0. in
  let remaining = ref total_utilization in
  for i = 0 to tasks - 2 do
    let next =
      !remaining *. (Prng.float rng ** (1. /. float_of_int (tasks - 1 - i)))
    in
    out.(i) <- !remaining -. next;
    remaining := next
  done;
  out.(tasks - 1) <- !remaining;
  out

let generate rng ~tasks ~total_utilization ?(min_period = Timebase.ms 50)
    ?(max_period = Timebase.s 2) () =
  let utilizations = uunifast rng ~tasks ~total_utilization in
  let log_min = log (float_of_int min_period) in
  let log_max = log (float_of_int max_period) in
  let raw =
    Array.to_list
      (Array.mapi
         (fun i u ->
           let period =
             int_of_float (exp (log_min +. (Prng.float rng *. (log_max -. log_min))))
           in
           let execution = max 1 (int_of_float (u *. float_of_int period)) in
           (i, period, execution))
         utilizations)
  in
  (* rate-monotonic: shorter period gets the higher priority *)
  let by_period = List.sort (fun (_, p1, _) (_, p2, _) -> Int.compare p2 p1) raw in
  List.mapi
    (fun rank (i, period, execution) ->
      { name = Printf.sprintf "task-%d" i; period; execution; priority = 10 + rank })
    by_period

type run_stats = {
  activations : int;
  completions : int;
  deadline_misses : int;
  worst_latency_s : float;
}

let run_under_attestation ~seed ~tasks ~scheme_atomic ~horizon ~attested_bytes =
  let device =
    Device.create
      {
        Device.default_config with
        Device.seed;
        block_size = 256;
        modeled_block_bytes = attested_bytes / Device.default_config.Device.blocks;
      }
  in
  let eng = device.Device.engine in
  let apps =
    List.map
      (fun t ->
        App.start eng device.Device.cpu device.Device.memory
          {
            App.name = t.name;
            period = t.period;
            execution = t.execution;
            priority = t.priority;
            deadline = Some t.period;
            data_blocks = [];
            write_bytes = 0;
            first_activation = Timebase.ms 10;
          })
      tasks
  in
  (* one measurement mid-run, at a priority below every task *)
  ignore
    (Engine.schedule eng ~at:(Timebase.s 2) (fun _ ->
         let cost = device.Device.config.Device.cost in
         let duration =
           Cost_model.hash_time cost Ra_crypto.Algo.SHA_256 ~bytes:attested_bytes
         in
         ignore
           (Cpu.submit device.Device.cpu ~atomic:scheme_atomic ~name:"mp" ~priority:5
              ~duration
              ~on_complete:(fun () -> ())
              ())));
  Engine.run ~until:horizon eng;
  List.iter App.stop apps;
  Engine.run ~until:(Timebase.add horizon (Timebase.s 30)) eng;
  List.fold_left
    (fun acc app ->
      let stats = App.latencies app in
      {
        activations = acc.activations + App.activations app;
        completions = acc.completions + App.completions app;
        deadline_misses = acc.deadline_misses + App.deadline_misses app;
        worst_latency_s =
          Float.max acc.worst_latency_s
            (if Stats.count stats = 0 then 0. else Stats.max_value stats);
      })
    { activations = 0; completions = 0; deadline_misses = 0; worst_latency_s = 0. }
    apps

let schedulability_table ?(seed = 43) () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Workload-level Section 2.5 — 6 rate-monotonic tasks + one 1 GiB measurement\n";
  Buffer.add_string buf
    "utilization  atomic misses  atomic worst  interruptible misses  interruptible worst\n";
  Buffer.add_string buf
    "-----------  -------------  ------------  --------------------  -------------------\n";
  List.iter
    (fun utilization ->
      let rng = Prng.create ~seed:(seed + int_of_float (utilization *. 100.)) in
      let tasks = generate rng ~tasks:6 ~total_utilization:utilization () in
      let run scheme_atomic =
        run_under_attestation ~seed ~tasks ~scheme_atomic ~horizon:(Timebase.s 25)
          ~attested_bytes:(1024 * 1024 * 1024)
      in
      let atomic = run true in
      let inter = run false in
      Buffer.add_string buf
        (Printf.sprintf "%-12s %-14d %-13s %-21d %s\n"
           (Printf.sprintf "%.0f%%" (utilization *. 100.))
           atomic.deadline_misses
           (Printf.sprintf "%.3f s" atomic.worst_latency_s)
           inter.deadline_misses
           (Printf.sprintf "%.3f s" inter.worst_latency_s)))
    [ 0.2; 0.4; 0.6 ];
  Buffer.add_string buf
    "Atomic attestation injects ~9.7 s of blackout into every task regardless\n\
     of utilization; the interruptible measurement only stretches itself.\n";
  Buffer.contents buf
