(** SMARM (Section 3.2): interruptible measurement over a secret shuffled
    order, repeated k times so a self-relocating adversary's per-round
    escape probability of roughly e^-1 decays exponentially. *)

val run_rounds :
  Ra_device.Device.t ->
  Mp.config ->
  rounds:int ->
  ?hooks:Mp.hooks ->
  on_complete:(Report.t list -> unit) ->
  unit ->
  unit
(** Run [rounds] successive measurements (fresh nonce each; the permutation
    is redrawn per round by the shuffled scheme). Reports are delivered in
    round order. Raises [Invalid_argument] if [rounds < 1] or the config's
    scheme does not use a shuffled order. *)

val per_round_escape_probability : blocks:int -> float
(** [(1 - 1/B)^B] — the optimal roving adversary relocates once per block
    measurement and is caught in each with probability 1/B. Tends to e^-1. *)

val escape_probability : blocks:int -> rounds:int -> float
(** Per-round probability raised to the number of independent rounds. *)

val rounds_for_target : blocks:int -> target:float -> int
(** Fewest rounds driving {!escape_probability} below [target]; the paper's
    "after 13 checks that probability is below 1e-6" sizing rule. *)
