(** Quality of Attestation (Section 3.3, Fig. 5): the two decoupled knobs —
    how often memory is measured (T_M) and how often results are collected
    (T_C) — and what they buy against transient malware. *)

open Ra_sim

type t = {
  t_m : Timebase.t;  (** measurement period *)
  t_c : Timebase.t;  (** collection period *)
  mp_duration : Timebase.t;  (** how long one measurement takes *)
}

val detection_probability : t -> dwell:Timebase.t -> float
(** Probability that transient malware dwelling for [dwell], with a phase
    uniform over the measurement period, overlaps at least one measurement:
    [min 1 ((dwell + mp_duration) / t_m)]. *)

val min_dwell_always_detected : t -> Timebase.t
(** Shortest dwell guaranteed to hit a measurement regardless of phase. *)

val worst_case_detection_delay : t -> Timebase.t
(** From infection to the verifier learning about it: up to a full
    measurement period to be measured, then up to a collection period (plus
    the measurement itself) before the report is picked up. *)

val on_demand : mp_duration:Timebase.t -> request_period:Timebase.t -> t
(** The conjoined on-demand case: measurement and collection coincide. *)

val pp : Format.formatter -> t -> unit
