open Ra_sim

type device_id = string

type t = {
  master_secret : Bytes.t;
  mutable roster : (device_id * Ra_device.Device.t) list; (* newest first *)
}

let create ~master_secret = { master_secret; roster = [] }

let derive_key t id =
  Ra_crypto.Hkdf.derive ~ikm:t.master_secret
    ~info:(Bytes.of_string ("ra-safety attestation key v1:" ^ id))
    ~length:32 ()

(* A public, deterministic firmware seed per device: both sides derive the
   same benign image without shipping it. *)
let firmware_seed id =
  let digest = Ra_crypto.Sha256.digest (Bytes.of_string ("firmware:" ^ id)) in
  Ra_crypto.Bytesutil.load32_be digest 0

let provision t id ?(config = Ra_device.Device.default_config) () =
  if List.mem_assoc id t.roster then invalid_arg "Fleet.provision: duplicate id";
  let device =
    Ra_device.Device.create
      {
        config with
        Ra_device.Device.key = derive_key t id;
        seed = firmware_seed id;
      }
  in
  t.roster <- (id, device) :: t.roster;
  device

let device t id = List.assoc id t.roster

let verifier_for t id = Verifier.of_device (device t id)

let enrolled t = List.rev_map fst t.roster

type roll_call = { clean : device_id list; tampered : device_id list }

let attest_all t ?(net_delay = Timebase.ms 40) mp_config =
  let clean = ref [] and tampered = ref [] in
  List.iter
    (fun (id, dev) ->
      let verifier = verifier_for t id in
      let verdict = ref None in
      Protocol.on_demand dev verifier mp_config ~net_delay
        ~auth_time:(Timebase.us 200)
        ~on_done:(fun events -> verdict := Some events.Protocol.verdict)
        ();
      Ra_device.Device.run dev;
      match !verdict with
      | Some Verifier.Clean -> clean := id :: !clean
      | Some Verifier.Tampered | None -> tampered := id :: !tampered)
    (List.rev t.roster);
  { clean = List.rev !clean; tampered = List.rev !tampered }
