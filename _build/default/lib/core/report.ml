open Ra_sim

type t = {
  scheme_name : string;
  hash : Ra_crypto.Algo.hash;
  nonce : Bytes.t;
  order : int array;
  mac : Bytes.t;
  data_copy : (int * Bytes.t) list;
  t_start : Timebase.t;
  t_end : Timebase.t;
  t_release : Timebase.t;
  signature : Ra_device.Cost_model.signature_alg option;
  counter : int option;
}

let mac_hex t = Ra_crypto.Bytesutil.to_hex t.mac

let pp fmt t =
  Format.fprintf fmt "[%s/%s ts=%s te=%s tr=%s mac=%s...]" t.scheme_name
    (Ra_crypto.Algo.hash_name t.hash)
    (Timebase.to_string t.t_start)
    (Timebase.to_string t.t_end)
    (Timebase.to_string t.t_release)
    (String.sub (mac_hex t) 0 12)

(* --- wire format --------------------------------------------------------- *)

let magic = "RARPT1"

let hash_id = function
  | Ra_crypto.Algo.SHA_256 -> 0
  | Ra_crypto.Algo.SHA_512 -> 1
  | Ra_crypto.Algo.BLAKE2b -> 2
  | Ra_crypto.Algo.BLAKE2s -> 3

let hash_of_id = function
  | 0 -> Some Ra_crypto.Algo.SHA_256
  | 1 -> Some Ra_crypto.Algo.SHA_512
  | 2 -> Some Ra_crypto.Algo.BLAKE2b
  | 3 -> Some Ra_crypto.Algo.BLAKE2s
  | _ -> None

let signature_id = function
  | Ra_device.Cost_model.RSA_1024 -> 0
  | Ra_device.Cost_model.RSA_2048 -> 1
  | Ra_device.Cost_model.RSA_4096 -> 2
  | Ra_device.Cost_model.ECDSA_160 -> 3
  | Ra_device.Cost_model.ECDSA_224 -> 4
  | Ra_device.Cost_model.ECDSA_256 -> 5

let signature_of_id = function
  | 0 -> Some Ra_device.Cost_model.RSA_1024
  | 1 -> Some Ra_device.Cost_model.RSA_2048
  | 2 -> Some Ra_device.Cost_model.RSA_4096
  | 3 -> Some Ra_device.Cost_model.ECDSA_160
  | 4 -> Some Ra_device.Cost_model.ECDSA_224
  | 5 -> Some Ra_device.Cost_model.ECDSA_256
  | _ -> None

let encode t =
  let buf = Buffer.create 256 in
  let u8 v = Buffer.add_char buf (Char.chr (v land 0xff)) in
  let u16 v =
    u8 (v lsr 8);
    u8 v
  in
  let u32 v =
    u16 (v lsr 16);
    u16 v
  in
  let u64 v =
    u32 (v lsr 32);
    u32 v
  in
  let bytes_field b =
    u16 (Bytes.length b);
    Buffer.add_bytes buf b
  in
  Buffer.add_string buf magic;
  u8 (hash_id t.hash);
  let name = Bytes.of_string t.scheme_name in
  u8 (Bytes.length name);
  Buffer.add_bytes buf name;
  bytes_field t.nonce;
  (match t.counter with
  | None -> u8 0
  | Some c ->
    u8 1;
    u64 c);
  u32 (Array.length t.order);
  Array.iter u32 t.order;
  bytes_field t.mac;
  u16 (List.length t.data_copy);
  List.iter
    (fun (block, content) ->
      u32 block;
      u32 (Bytes.length content);
      Buffer.add_bytes buf content)
    t.data_copy;
  u64 t.t_start;
  u64 t.t_end;
  u64 t.t_release;
  (match t.signature with
  | None -> u8 0
  | Some alg ->
    u8 1;
    u8 (signature_id alg));
  Buffer.to_bytes buf

exception Malformed of string

let decode input =
  let pos = ref 0 in
  let len = Bytes.length input in
  let need n what =
    if !pos + n > len then raise (Malformed (Printf.sprintf "truncated at %s" what))
  in
  let u8 what =
    need 1 what;
    let v = Char.code (Bytes.get input !pos) in
    incr pos;
    v
  in
  (* explicit sequencing: operand evaluation order is unspecified *)
  let u16 what =
    let hi = u8 what in
    let lo = u8 what in
    (hi lsl 8) lor lo
  in
  let u32 what =
    let hi = u16 what in
    let lo = u16 what in
    (hi lsl 16) lor lo
  in
  let u64 what =
    let hi = u32 what in
    let lo = u32 what in
    (hi lsl 32) lor lo
  in
  let raw n what =
    need n what;
    let b = Bytes.sub input !pos n in
    pos := !pos + n;
    b
  in
  let bytes_field what = raw (u16 what) what in
  try
    if not (Bytes.equal (raw (String.length magic) "magic") (Bytes.of_string magic))
    then Error "bad magic"
    else begin
      let hash =
        match hash_of_id (u8 "hash id") with
        | Some h -> h
        | None -> raise (Malformed "unknown hash id")
      in
      let scheme_name = Bytes.to_string (raw (u8 "scheme name length") "scheme name") in
      let nonce = bytes_field "nonce" in
      let counter =
        match u8 "counter flag" with
        | 0 -> None
        | 1 -> Some (u64 "counter")
        | _ -> raise (Malformed "bad counter flag")
      in
      let order_len = u32 "order length" in
      if order_len > 1_000_000 then raise (Malformed "implausible order length");
      let order = Array.init order_len (fun _ -> u32 "order entry") in
      let mac = bytes_field "mac" in
      let copies = u16 "data copy count" in
      let data_copy =
        List.init copies (fun _ ->
            let block = u32 "data copy block" in
            let size = u32 "data copy size" in
            if size > 16_777_216 then raise (Malformed "implausible data copy size");
            (block, raw size "data copy content"))
      in
      let t_start = u64 "t_start" in
      let t_end = u64 "t_end" in
      let t_release = u64 "t_release" in
      let signature =
        match u8 "signature flag" with
        | 0 -> None
        | 1 -> (
          match signature_of_id (u8 "signature id") with
          | Some alg -> Some alg
          | None -> raise (Malformed "unknown signature id"))
        | _ -> raise (Malformed "bad signature flag")
      in
      if !pos <> len then Error "trailing bytes"
      else
        Ok
          {
            scheme_name;
            hash;
            nonce;
            order;
            mac;
            data_copy;
            t_start;
            t_end;
            t_release;
            signature;
            counter;
          }
    end
  with Malformed reason -> Error reason
