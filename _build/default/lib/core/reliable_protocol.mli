(** On-demand RA over an unreliable network: retransmission with a stable
    per-session nonce, and prover-side duplicate suppression so a retried
    request neither restarts a measurement in flight nor re-measures when
    the report is already cached. *)

open Ra_sim

type config = {
  mp : Mp.config;
  channel : Channel.config;  (** applied to both directions *)
  auth_time : Timebase.t;
  retry_timeout : Timebase.t;  (** verifier resends if no report by then *)
  max_attempts : int;
}

val default_config : config
(** SMART MP, ideal channel, 200 us auth, 15 s timeout, 4 attempts. *)

type result = {
  verdict : Verifier.verdict option;  (** [None]: all attempts timed out *)
  attempts : int;  (** requests the verifier transmitted *)
  duplicates_suppressed : int;  (** retried requests absorbed by the prover *)
  measurements_run : int;  (** MPs actually executed (want: at most 1) *)
  completed_at : Timebase.t option;
}

val run :
  Ra_device.Device.t ->
  Verifier.t ->
  config ->
  on_done:(result -> unit) ->
  unit ->
  unit
(** Start one attestation session now; [on_done] fires at the verified
    report or after the last attempt's timeout. *)
