(** The design space of Section 3: how a measurement traverses memory, what
    it locks, and whether it can be interrupted. *)

open Ra_sim

type locking =
  | No_lock  (** strawman: nothing locked, no consistency guarantee *)
  | All_lock  (** everything locked over [\[ts, te\]] *)
  | All_lock_ext of Timebase.t
      (** All-Lock held for an extra interval after [te]; released at [tr] *)
  | Dec_lock  (** all locked at [ts]; each block released once measured *)
  | Inc_lock  (** blocks locked as measured; all released at [te] *)
  | Inc_lock_ext of Timebase.t
      (** Inc-Lock whose full lock is held until [tr] after [te] *)
  | Cpy_lock
      (** copy-on-write variant of All-Lock from the temporal-consistency
          paper: readers see memory frozen over [\[ts, te\]] while writers
          proceed into shadows that merge at [te] — consistency without
          stalling the critical task, at a memory cost *)

type order =
  | Sequential  (** ascending block index; predictable by malware *)
  | Shuffled  (** secret uniform permutation per measurement (SMARM) *)

type t = {
  name : string;
  atomic : bool;  (** SMART-style: the whole MP is one uninterruptible unit *)
  locking : locking;
  order : order;
  zero_data : bool;
      (** zero volatile data regions before measuring (Section 2.3) *)
}

val smart : t
(** Baseline: atomic, sequential, no locks needed (atomicity subsumes them). *)

val no_lock : t
val all_lock : t
val all_lock_ext : Timebase.t -> t
val dec_lock : t
val inc_lock : t
val inc_lock_ext : Timebase.t -> t

val cpy_lock : t

val smarm : t
(** Interruptible, shuffled order, no locks. *)

val all_basic : t list
(** The schemes of Table 1 (with a 0-extension default where applicable):
    SMART, No-Lock, All-Lock, Dec-Lock, Inc-Lock, SMARM. *)

val all_with_extensions : t list
(** {!all_basic} plus Cpy-Lock. *)

val of_name : string -> t option
(** Accepts e.g. ["smart"], ["no-lock"], ["all-lock"], ["dec-lock"],
    ["inc-lock"], ["smarm"]. *)

val with_zero_data : t -> t

val lock_release_delay : t -> Timebase.t option
(** The extension interval for the [_ext] modes, if any. *)
