open Ra_sim
open Ra_device

type t = {
  device : Device.t;
  hash : Ra_crypto.Algo.hash;
  priority : int;
  mutable tree : Merkle.t option;
  mutable last_attested : Timebase.t;
}

type report = {
  nonce : Bytes.t;
  root_mac : Bytes.t;
  dirty_blocks : int;
  t_start : Timebase.t;
  t_end : Timebase.t;
}

let node_digest_bytes = 65 (* prefix + two 32-byte children, order of magnitude *)

let tree_depth blocks =
  let rec go d k = if k >= blocks then d else go (d + 1) (2 * k) in
  go 0 1

let attestation_cost device ~hash ~dirty =
  let cost = device.Device.config.Device.cost in
  let block = Cost_model.hash_time_raw cost hash ~bytes:device.Device.config.Device.modeled_block_bytes in
  let node = Cost_model.hash_time_raw cost hash ~bytes:node_digest_bytes in
  let depth = tree_depth (Memory.block_count device.Device.memory) in
  Timebase.add
    (Cost_model.hash_time cost hash ~bytes:0)
    ((dirty * block) + (dirty * depth * node))

let start device ?(hash = Ra_crypto.Algo.SHA_256) ?(priority = 5) ~on_ready () =
  let t =
    { device; hash; priority; tree = None; last_attested = Timebase.zero }
  in
  let full_cost =
    Cost_model.hash_time device.Device.config.Device.cost hash
      ~bytes:(Device.attested_bytes device)
  in
  ignore
    (Cpu.submit device.Device.cpu ~name:"mp-tree-build" ~priority ~duration:full_cost
       ~on_complete:(fun () ->
         t.tree <- Some (Merkle.of_memory hash device.Device.memory);
         t.last_attested <- Engine.now device.Device.engine;
         on_ready ())
       ());
  t

let mac_root t ~nonce ~root =
  Ra_crypto.Mac_stream.mac t.hash ~key:t.device.Device.config.Device.key
    (Bytes.cat nonce root)

let attest t ~nonce ~on_complete =
  match t.tree with
  | None -> failwith "Incremental.attest: tree not built yet"
  | Some tree ->
    let eng = t.device.Device.engine in
    let mem = t.device.Device.memory in
    let t_start = Engine.now eng in
    let dirty =
      List.sort_uniq Int.compare
        (List.map snd (Memory.writes_between mem t.last_attested t_start))
    in
    let duration = attestation_cost t.device ~hash:t.hash ~dirty:(List.length dirty) in
    ignore
      (Cpu.submit t.device.Device.cpu ~name:"mp-incremental" ~priority:t.priority
         ~duration
         ~on_complete:(fun () ->
           List.iter
             (fun block ->
               Merkle.update tree ~index:block ~content:(Memory.read_block mem block))
             dirty;
           t.last_attested <- Engine.now eng;
           on_complete
             {
               nonce;
               root_mac = mac_root t ~nonce ~root:(Merkle.root tree);
               dirty_blocks = List.length dirty;
               t_start;
               t_end = Engine.now eng;
             })
         ())

let expected_root hash ~expected_image ~block_size =
  if block_size <= 0 || Bytes.length expected_image mod block_size <> 0 then
    invalid_arg "Incremental.expected_root: bad image";
  let blocks = Bytes.length expected_image / block_size in
  let tree =
    Merkle.build hash
      ~leaves:
        (Array.init blocks (fun i ->
             Bytes.sub expected_image (i * block_size) block_size))
  in
  Merkle.root tree

let verify ~key ~hash ~expected_root report =
  let expected =
    Ra_crypto.Mac_stream.mac hash ~key (Bytes.cat report.nonce expected_root)
  in
  if Ra_crypto.Bytesutil.constant_time_equal expected report.root_mac then
    Verifier.Clean
  else Verifier.Tampered
