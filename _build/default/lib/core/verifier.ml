type t = {
  key : Bytes.t;
  expected_image : Bytes.t;
  block_size : int;
  data_blocks : int list;
  zero_data : bool;
}

type verdict = Clean | Tampered

let verdict_to_string = function Clean -> "clean" | Tampered -> "TAMPERED"

let create ~key ~expected_image ~block_size ~data_blocks ~zero_data =
  if Bytes.length expected_image mod block_size <> 0 then
    invalid_arg "Verifier.create: image not a multiple of block size";
  { key; expected_image; block_size; data_blocks; zero_data }

let of_device device =
  let config = device.Ra_device.Device.config in
  let size = config.Ra_device.Device.blocks * config.Ra_device.Device.block_size in
  {
    key = config.Ra_device.Device.key;
    expected_image =
      Ra_device.Device.firmware_image ~seed:config.Ra_device.Device.seed ~size;
    block_size = config.Ra_device.Device.block_size;
    data_blocks = config.Ra_device.Device.data_blocks;
    zero_data = false;
  }

let with_zero_data t zero_data = { t with zero_data }

(* distinct, in-range blocks; full coverage is checked separately so that
   per-process (TyTAN-style) region reports can share the machinery *)
let valid_order order blocks =
  let seen = Array.make blocks false in
  Array.for_all
    (fun b ->
      if b < 0 || b >= blocks || seen.(b) then false
      else begin
        seen.(b) <- true;
        true
      end)
    order


let expected_block_content t report block =
  if List.mem block t.data_blocks then
    if t.zero_data then Some (Bytes.make t.block_size '\000')
    else List.assoc_opt block report.Report.data_copy
  else
    Some (Bytes.sub t.expected_image (block * t.block_size) t.block_size)

let expected_mac t report =
  let blocks = Bytes.length t.expected_image / t.block_size in
  if not (valid_order report.Report.order blocks) then None
  else begin
    (* Gather contents first so a missing data copy aborts cleanly. *)
    let contents =
      Array.map (fun b -> expected_block_content t report b) report.Report.order
    in
    if Array.exists Option.is_none contents then None
    else begin
      let table = Hashtbl.create blocks in
      Array.iteri
        (fun i b ->
          match contents.(i) with
          | Some c -> Hashtbl.replace table b c
          | None -> assert false)
        report.Report.order;
      Some
        (Mp.mac_over ~hash:report.Report.hash ~key:t.key
           ~nonce:report.Report.nonce ~counter:report.Report.counter
           ~order:report.Report.order
           ~block_content:(fun b -> Hashtbl.find table b))
    end
  end

let mac_matches t report =
  match expected_mac t report with
  | None -> false
  | Some mac -> Ra_crypto.Bytesutil.constant_time_equal mac report.Report.mac

let verify t report =
  let blocks = Bytes.length t.expected_image / t.block_size in
  if Array.length report.Report.order = blocks && mac_matches t report then Clean
  else Tampered

let verify_region t ~region report =
  let sorted a =
    let copy = Array.copy a in
    Array.sort Int.compare copy;
    copy
  in
  if sorted report.Report.order = sorted (Array.of_list region) && mac_matches t report
  then Clean
  else Tampered

let verify_fresh t ~nonce report =
  if Bytes.equal nonce report.Report.nonce then verify t report else Tampered
