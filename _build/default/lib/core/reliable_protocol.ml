open Ra_sim
open Ra_device

type config = {
  mp : Mp.config;
  channel : Channel.config;
  auth_time : Timebase.t;
  retry_timeout : Timebase.t;
  max_attempts : int;
}

let default_config =
  {
    mp = Mp.default_config;
    channel = Channel.ideal;
    auth_time = Timebase.us 200;
    retry_timeout = Timebase.s 15;
    max_attempts = 4;
  }

type result = {
  verdict : Verifier.verdict option;
  attempts : int;
  duplicates_suppressed : int;
  measurements_run : int;
  completed_at : Timebase.t option;
}

type prover_session = In_progress | Done of Report.t

let run device verifier config ~on_done () =
  if config.max_attempts < 1 then invalid_arg "Reliable_protocol: max_attempts < 1";
  let eng = device.Device.engine in
  let nonce = Prng.bytes (Engine.prng eng) 16 in
  let attempts = ref 0 in
  let suppressed = ref 0 in
  let measurements = ref 0 in
  let finished = ref false in
  (* forward declarations to tie the two channel callbacks together *)
  let uplink = ref None (* requests: Vrf -> Prv *) in
  let downlink = ref None (* reports: Prv -> Vrf *) in
  let send_report report =
    match !downlink with Some ch -> Channel.send ch report | None -> ()
  in
  let sessions : (string, prover_session) Hashtbl.t = Hashtbl.create 4 in
  let prover_receives request_nonce =
    let key = Bytes.to_string request_nonce in
    match Hashtbl.find_opt sessions key with
    | Some In_progress -> incr suppressed
    | Some (Done report) ->
      incr suppressed;
      send_report report
    | None ->
      Hashtbl.replace sessions key In_progress;
      ignore
        (Cpu.submit device.Device.cpu ~name:"mp-auth" ~priority:config.mp.Mp.priority
           ~duration:config.auth_time
           ~on_complete:(fun () ->
             incr measurements;
             Mp.run device config.mp ~nonce:request_nonce
               ~on_complete:(fun report ->
                 Hashtbl.replace sessions key (Done report);
                 send_report report)
               ())
           ())
  in
  let finish verdict =
    if not !finished then begin
      finished := true;
      on_done
        {
          verdict;
          attempts = !attempts;
          duplicates_suppressed = !suppressed;
          measurements_run = !measurements;
          completed_at =
            (match verdict with Some _ -> Some (Engine.now eng) | None -> None);
        }
    end
  in
  let verifier_receives report =
    if not !finished then finish (Some (Verifier.verify_fresh verifier ~nonce report))
  in
  uplink := Some (Channel.create eng config.channel ~deliver:prover_receives);
  downlink := Some (Channel.create eng config.channel ~deliver:verifier_receives);
  let rec attempt () =
    if not !finished then begin
      if !attempts >= config.max_attempts then finish None
      else begin
        incr attempts;
        Engine.recordf eng ~tag:"protocol" "request attempt %d" !attempts;
        (match !uplink with Some ch -> Channel.send ch nonce | None -> ());
        ignore (Engine.schedule_after eng ~delay:config.retry_timeout (fun _ -> attempt ()))
      end
    end
  in
  attempt ()
