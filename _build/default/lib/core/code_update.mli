(** RA-derived services from the paper's introduction: secure deletion via
    Proofs of Secure Erasure (Perito–Tsudik) and SCUBA-style attested code
    update.

    PoSE needs no trust anchor: the verifier streams fresh randomness that
    fills the prover's *entire* memory, and the prover returns a MAC over
    its memory keyed by that randomness. Malware that wants to survive must
    keep its own bytes somewhere — and with memory full of expected
    randomness there is nowhere to hide: any skipped block flips the proof.
    A clean erasure is then the safe point to install new firmware, after
    which one ordinary attestation round confirms the update took. *)

open Ra_sim

type config = {
  receive_ns_per_byte : float;  (** downlink cost of streaming randomness *)
  priority : int;  (** CPU priority of the erase/install work *)
  hash : Ra_crypto.Algo.hash;
}

val default_config : config
(** 100 ns/byte downlink (~10 MB/s), priority 5, SHA-256. *)

type outcome = {
  erasure_proof_ok : bool;
  update_verdict : Verifier.verdict;  (** post-install attestation *)
  malware_survived : bool;  (** any malware payload byte left in memory *)
  erased_at : Timebase.t;
  completed_at : Timebase.t;
}

val run :
  Ra_device.Device.t ->
  config ->
  ?cheat_blocks:int list ->
  new_seed:int ->
  on_done:(outcome -> unit) ->
  unit ->
  unit
(** Full erase-then-update flow starting now. [cheat_blocks] are blocks a
    compromised erasure routine silently skips (the PoSE adversary);
    skipping any block makes the proof fail and aborts the update (the
    [update_verdict] is then [Tampered] by convention). [new_seed]
    determines the new firmware image, derived identically by both sides. *)
