open Ra_sim
open Ra_device

let mac_at device report ~time =
  let mem = device.Device.memory in
  Mp.mac_over ~hash:report.Report.hash
    ~key:device.Device.config.Device.key ~nonce:report.Report.nonce
    ~counter:report.Report.counter ~order:report.Report.order
    ~block_content:(fun block -> Memory.block_content_at mem ~time ~block)

let holds_at device report ~time =
  Ra_crypto.Bytesutil.constant_time_equal (mac_at device report ~time)
    report.Report.mac

let check_instants device report probes =
  List.map (fun (label, time) -> (label, time, holds_at device report ~time)) probes

let consistent_throughout device report ~from_ ~until =
  if until < from_ then invalid_arg "Consistency.consistent_throughout: bad interval";
  let mem = device.Device.memory in
  let write_instants =
    List.map fst (Memory.writes_between mem from_ until)
  in
  (* Memory only changes at journaled writes, so checking the endpoints and
     each write instant covers the continuum. *)
  List.for_all
    (fun time -> holds_at device report ~time)
    (from_ :: until :: write_instants)

let consistency_profile device report ~samples ~margin =
  if samples < 2 then invalid_arg "Consistency.consistency_profile: samples < 2";
  let start = max 0 (Timebase.sub report.Report.t_start margin) in
  let finish = Timebase.add report.Report.t_release margin in
  let span = Timebase.sub finish start in
  List.init samples (fun i ->
      let time = Timebase.add start (span * i / (samples - 1)) in
      (time, holds_at device report ~time))
