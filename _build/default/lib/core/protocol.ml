open Ra_sim
open Ra_device

type events = {
  request_sent : Timebase.t;
  request_received : Timebase.t;
  mp_started : Timebase.t;
  mp_finished : Timebase.t;
  report_sent : Timebase.t;
  report_received : Timebase.t;
  verdict : Verifier.verdict;
  report : Report.t;
}

let events_to_markers e =
  [
    ("request sent", e.request_sent);
    ("request received", e.request_received);
    ("ts: MP starts", e.mp_started);
    ("te: MP done", e.mp_finished);
    ("report sent", e.report_sent);
    ("report received & verified", e.report_received);
  ]

let on_demand device verifier mp_config ?(hooks = Mp.null_hooks) ~net_delay
    ~auth_time ~on_done () =
  let eng = device.Device.engine in
  let nonce = Prng.bytes (Engine.prng eng) 16 in
  let request_sent = Engine.now eng in
  Engine.record eng ~tag:"protocol" "Vrf: attestation request sent";
  ignore
    (Engine.schedule_after eng ~delay:net_delay (fun _ ->
         let request_received = Engine.now eng in
         Engine.record eng ~tag:"protocol" "Prv: request received";
         (* Request authentication runs at the MP's priority: on a busy
            device the measurement is deferred, as Fig. 1 illustrates. *)
         ignore
           (Cpu.submit device.Device.cpu ~name:"mp-auth"
              ~priority:mp_config.Mp.priority ~duration:auth_time
              ~on_complete:(fun () ->
                Mp.run device mp_config ~nonce ~hooks
                  ~on_complete:(fun report ->
                    let report_sent = Engine.now eng in
                    Engine.record eng ~tag:"protocol" "Prv: report sent";
                    ignore
                      (Engine.schedule_after eng ~delay:net_delay (fun _ ->
                           let report_received = Engine.now eng in
                           let verdict = Verifier.verify_fresh verifier ~nonce report in
                           Engine.recordf eng ~tag:"protocol"
                             "Vrf: report verified: %s"
                             (Verifier.verdict_to_string verdict);
                           on_done
                             {
                               request_sent;
                               request_received;
                               mp_started = report.Report.t_start;
                               mp_finished = report.Report.t_end;
                               report_sent;
                               report_received;
                               verdict;
                               report;
                             })))
                  ())
              ())))
