open Ra_sim

type locking =
  | No_lock
  | All_lock
  | All_lock_ext of Timebase.t
  | Dec_lock
  | Inc_lock
  | Inc_lock_ext of Timebase.t
  | Cpy_lock

type order = Sequential | Shuffled

type t = {
  name : string;
  atomic : bool;
  locking : locking;
  order : order;
  zero_data : bool;
}

let smart =
  { name = "SMART"; atomic = true; locking = No_lock; order = Sequential; zero_data = false }

let no_lock =
  { name = "No-Lock"; atomic = false; locking = No_lock; order = Sequential; zero_data = false }

let all_lock =
  { name = "All-Lock"; atomic = false; locking = All_lock; order = Sequential; zero_data = false }

let all_lock_ext delay =
  {
    name = "All-Lock-Ext";
    atomic = false;
    locking = All_lock_ext delay;
    order = Sequential;
    zero_data = false;
  }

let dec_lock =
  { name = "Dec-Lock"; atomic = false; locking = Dec_lock; order = Sequential; zero_data = false }

let inc_lock =
  { name = "Inc-Lock"; atomic = false; locking = Inc_lock; order = Sequential; zero_data = false }

let inc_lock_ext delay =
  {
    name = "Inc-Lock-Ext";
    atomic = false;
    locking = Inc_lock_ext delay;
    order = Sequential;
    zero_data = false;
  }

let cpy_lock =
  { name = "Cpy-Lock"; atomic = false; locking = Cpy_lock; order = Sequential; zero_data = false }

let smarm =
  { name = "SMARM"; atomic = false; locking = No_lock; order = Shuffled; zero_data = false }

let all_basic = [ smart; no_lock; all_lock; dec_lock; inc_lock; smarm ]

let all_with_extensions = all_basic @ [ cpy_lock ]

let of_name s =
  let norm =
    String.lowercase_ascii
      (String.concat "" (String.split_on_char '-' (String.trim s)))
  in
  match norm with
  | "smart" -> Some smart
  | "nolock" -> Some no_lock
  | "alllock" -> Some all_lock
  | "declock" -> Some dec_lock
  | "inclock" -> Some inc_lock
  | "smarm" -> Some smarm
  | "cpylock" -> Some cpy_lock
  | _ -> None

let with_zero_data t = { t with zero_data = true; name = t.name ^ "+ZeroData" }

let lock_release_delay t =
  match t.locking with
  | All_lock_ext d | Inc_lock_ext d -> Some d
  | No_lock | All_lock | Dec_lock | Inc_lock | Cpy_lock -> None
