(** Temporal-consistency checking (Section 3.1, Fig. 4).

    A report is *consistent with memory at instant t* when its MAC equals
    the MAC recomputed over the exact memory image at t (reconstructed from
    the device's write journal). The paper's claims become checkable
    properties: All-Lock reports are consistent at every instant of
    [\[ts, te\]], Dec-Lock exactly at ts, Inc-Lock exactly at te, No-Lock
    possibly nowhere. *)

open Ra_sim

val mac_at : Ra_device.Device.t -> Report.t -> time:Timebase.t -> Bytes.t
(** Recompute the report's MAC over the journal-reconstructed image. *)

val holds_at : Ra_device.Device.t -> Report.t -> time:Timebase.t -> bool

val check_instants :
  Ra_device.Device.t ->
  Report.t ->
  (string * Timebase.t) list ->
  (string * Timebase.t * bool) list
(** Evaluate {!holds_at} at labelled instants (the A/B/C/D probes of
    Fig. 4). *)

val consistent_throughout :
  Ra_device.Device.t -> Report.t -> from_:Timebase.t -> until:Timebase.t -> bool
(** True when the report is consistent at [from_], [until], and every
    journaled write instant in between — which, writes being the only way
    memory changes, covers the whole continuous interval. *)

val consistency_profile :
  Ra_device.Device.t ->
  Report.t ->
  samples:int ->
  margin:Timebase.t ->
  (Timebase.t * bool) list
(** Sampled profile over [\[ts - margin, tr + margin\]], for rendering. *)
