open Ra_sim
open Ra_device

let run_rounds device config ~rounds ?(hooks = Mp.null_hooks) ~on_complete () =
  if rounds < 1 then invalid_arg "Smarm.run_rounds: rounds < 1";
  (match config.Mp.scheme.Scheme.order with
  | Scheme.Shuffled -> ()
  | Scheme.Sequential -> invalid_arg "Smarm.run_rounds: scheme must shuffle");
  let eng = device.Device.engine in
  let rec round k acc =
    let nonce = Prng.bytes (Engine.prng eng) 16 in
    Mp.run device config ~nonce ~hooks
      ~on_complete:(fun report ->
        let acc = report :: acc in
        if k + 1 < rounds then round (k + 1) acc
        else on_complete (List.rev acc))
      ()
  in
  round 0 []

let per_round_escape_probability ~blocks =
  if blocks < 1 then invalid_arg "Smarm: blocks < 1";
  let b = float_of_int blocks in
  ((b -. 1.) /. b) ** b

let escape_probability ~blocks ~rounds =
  per_round_escape_probability ~blocks ** float_of_int rounds

let rounds_for_target ~blocks ~target =
  if target <= 0. || target >= 1. then invalid_arg "Smarm: target out of (0,1)";
  let per_round = per_round_escape_probability ~blocks in
  int_of_float (Float.ceil (log target /. log per_round))
