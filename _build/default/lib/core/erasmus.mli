(** ERASMUS (Section 3.3): recurrent self-measurements stored on the prover
    and collected by the verifier later, decoupling measurement frequency
    (T_M) from collection frequency (T_C). *)

open Ra_sim

type config = {
  mp : Mp.config;
  period : Timebase.t;  (** T_M *)
  first_at : Timebase.t;
  capacity : int;  (** ring buffer of stored reports *)
  defer_if_app_running : Timebase.t option;
      (** context-aware scheduling: postpone by this much when a
          higher-priority job holds the CPU at the scheduled instant *)
}

val default_config : config
(** SMART MP, T_M = 10 s, capacity 32, no deferral. *)

type t

val start : Ra_device.Device.t -> ?hooks:Mp.hooks -> config -> t
(** Begin the self-measurement schedule. Each measurement carries a fresh
    monotonic counter (its freshness evidence) and a counter-derived nonce. *)

val stop : t -> unit

val stored : t -> Report.t list
(** Reports currently held, oldest first, at most [capacity]. *)

val collect : t -> max:int -> Report.t list
(** What Vrf pulls during a collection visit: up to [max] most recent
    reports, oldest first. Collected reports stay stored (idempotent). *)

val measurements_taken : t -> int

val on_demand_measure : t -> nonce:Bytes.t -> on_complete:(Report.t -> unit) -> unit
(** ERASMUS composed with on-demand RA: run an extra measurement right now
    with the verifier's nonce (maximum freshness), independent of the
    schedule. *)
