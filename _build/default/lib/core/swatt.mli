(** Software-based attestation (the Pioneer/SWATT approach of Section 2.1).

    No key and no hardware anchor: the prover runs a challenge-seeded
    checksum over its memory in a pseudorandom order, and the verifier
    checks both the checksum value and the *response latency* — malware
    that redirects reads (to a pristine copy of the regions it modified)
    produces the right value but pays a per-access overhead.

    The paper's verdict on this class ("security is uncertain", citing the
    Castelluccia et al. attacks) is reproducible here: once network jitter
    rivals the adversary's overhead margin, no threshold separates honest
    from compromised runs. *)

type config = {
  iterations : int;  (** pseudorandom memory accesses per attestation *)
  access_ns : float;  (** honest per-access cost *)
  jitter_ns : float;  (** uniform network/scheduling noise on the response *)
  slack : float;  (** verifier accepts response times up to
                      [slack * expected] *)
}

val default_config : config
(** 200k accesses, 18 ns each, 50 us jitter, 10% slack. *)

val checksum : memory:Bytes.t -> nonce:Bytes.t -> iterations:int -> int64
(** The actual checksum computation: a nonce-seeded pseudorandom walk
    mixing memory words into a 64-bit accumulator. Deterministic; any
    single flipped byte changes the result with overwhelming probability. *)

type prover =
  | Honest
  | Redirecting of { overhead : float }
      (** malware interposes on every access, multiplying its cost (the
          classic redirect-to-clean-copy evasion); the checksum value it
          returns is correct *)

type outcome = {
  value_ok : bool;
  time_ok : bool;
  accepted : bool;  (** both checks passed *)
  response_ns : float;
  threshold_ns : float;
}

val attest :
  rng:Ra_sim.Prng.t -> config -> memory:Bytes.t -> prover:prover -> outcome
(** One attestation round: the verifier draws a nonce, the prover computes
    the checksum (honestly or through the redirection layer), jitter is
    added, and both checks are evaluated. *)

val separation_table :
  ?seed:int -> ?trials:int -> config -> overhead:float -> jitter_levels:float list -> string
(** For each jitter level: honest false-positive rate and compromised
    detection rate at the configured slack — the uncertainty argument. *)
