lib/core/smarm.ml: Device Engine Float List Mp Prng Ra_device Ra_sim Scheme
