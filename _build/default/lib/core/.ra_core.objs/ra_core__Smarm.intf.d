lib/core/smarm.mli: Mp Ra_device Report
