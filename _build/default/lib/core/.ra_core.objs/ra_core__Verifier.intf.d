lib/core/verifier.mli: Bytes Ra_device Report
