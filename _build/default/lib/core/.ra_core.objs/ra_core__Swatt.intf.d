lib/core/swatt.mli: Bytes Ra_sim
