lib/core/code_update.ml: Bytes Cost_model Cpu Device Engine Float List Memory Mp Prng Ra_crypto Ra_device Ra_sim Timebase Verifier
