lib/core/consistency.mli: Bytes Ra_device Ra_sim Report Timebase
