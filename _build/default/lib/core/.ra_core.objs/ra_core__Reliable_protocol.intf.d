lib/core/reliable_protocol.mli: Channel Mp Ra_device Ra_sim Timebase Verifier
