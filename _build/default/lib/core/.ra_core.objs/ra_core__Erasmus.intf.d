lib/core/erasmus.mli: Bytes Mp Ra_device Ra_sim Report Timebase
