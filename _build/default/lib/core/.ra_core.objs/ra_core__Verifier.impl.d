lib/core/verifier.ml: Array Bytes Hashtbl Int List Mp Option Ra_crypto Ra_device Report
