lib/core/timeline.ml: Buffer Bytes Char List Printf Ra_sim Timebase
