lib/core/merkle.ml: Array Bytes List Ra_crypto Ra_device
