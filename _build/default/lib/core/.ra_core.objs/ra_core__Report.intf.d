lib/core/report.mli: Bytes Format Ra_crypto Ra_device Ra_sim Timebase
