lib/core/timeline.mli: Ra_sim Timebase
