lib/core/report.ml: Array Buffer Bytes Char Format List Printf Ra_crypto Ra_device Ra_sim String Timebase
