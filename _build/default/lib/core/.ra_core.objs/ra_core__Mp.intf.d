lib/core/mp.mli: Bytes Ra_crypto Ra_device Report Scheme
