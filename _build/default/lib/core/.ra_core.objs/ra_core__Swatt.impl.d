lib/core/swatt.ml: Buffer Bytes Char Int64 List Printf Prng Ra_crypto Ra_sim
