lib/core/incremental.ml: Array Bytes Cost_model Cpu Device Engine Int List Memory Merkle Ra_crypto Ra_device Ra_sim Timebase Verifier
