lib/core/merkle.mli: Bytes Ra_crypto Ra_device
