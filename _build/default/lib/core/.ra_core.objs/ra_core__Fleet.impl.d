lib/core/fleet.ml: Bytes List Protocol Ra_crypto Ra_device Ra_sim Timebase Verifier
