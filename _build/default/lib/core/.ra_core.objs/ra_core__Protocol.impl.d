lib/core/protocol.ml: Cpu Device Engine Mp Prng Ra_device Ra_sim Report Timebase Verifier
