lib/core/fleet.mli: Bytes Mp Ra_device Ra_sim Timebase Verifier
