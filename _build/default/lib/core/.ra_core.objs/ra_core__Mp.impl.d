lib/core/mp.ml: Array Bytes Cost_model Cpu Device Engine Float Int64 List Memory Prng Ra_crypto Ra_device Ra_sim Report Scheme Timebase
