lib/core/incremental.mli: Bytes Ra_crypto Ra_device Ra_sim Timebase Verifier
