lib/core/seed_ra.mli: Mp Ra_device Ra_sim Report Timebase Verifier
