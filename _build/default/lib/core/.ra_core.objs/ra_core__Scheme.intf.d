lib/core/scheme.mli: Ra_sim Timebase
