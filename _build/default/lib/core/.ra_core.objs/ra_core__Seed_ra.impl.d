lib/core/seed_ra.ml: Bytes Device Engine Float Int64 List Mp Prng Ra_crypto Ra_device Ra_sim Report Timebase Verifier
