lib/core/qoa.ml: Float Format Ra_sim Timebase
