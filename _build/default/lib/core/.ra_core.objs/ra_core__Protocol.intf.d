lib/core/protocol.mli: Mp Ra_device Ra_sim Report Timebase Verifier
