lib/core/reliable_protocol.ml: Bytes Channel Cpu Device Engine Hashtbl Mp Prng Ra_device Ra_sim Report Timebase Verifier
