lib/core/code_update.mli: Ra_crypto Ra_device Ra_sim Timebase Verifier
