lib/core/consistency.ml: Device List Memory Mp Ra_crypto Ra_device Ra_sim Report Timebase
