lib/core/tytan.mli: Bytes Ra_crypto Ra_device Report Verifier
