lib/core/scheme.ml: Ra_sim String Timebase
