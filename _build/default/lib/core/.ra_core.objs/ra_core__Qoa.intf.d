lib/core/qoa.mli: Format Ra_sim Timebase
