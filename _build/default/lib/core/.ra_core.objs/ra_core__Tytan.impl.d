lib/core/tytan.ml: Array Bytes Cost_model Cpu Device Engine List Memory Ra_crypto Ra_device Ra_sim Report Verifier
