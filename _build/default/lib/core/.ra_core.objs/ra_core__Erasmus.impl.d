lib/core/erasmus.ml: Bytes Cpu Device Engine Int64 List Mp Ra_crypto Ra_device Ra_sim Report Timebase
