(** The on-demand RA protocol of Section 2.2 (Fig. 1): challenge, deferred
    measurement, report, verification — with explicit network and request
    authentication delays so the Fig. 1 timeline can be regenerated. *)

open Ra_sim

type events = {
  request_sent : Timebase.t;
  request_received : Timebase.t;
  mp_started : Timebase.t;  (** may lag the request: deferral (Fig. 1) *)
  mp_finished : Timebase.t;
  report_sent : Timebase.t;
  report_received : Timebase.t;
  verdict : Verifier.verdict;
  report : Report.t;
}

val events_to_markers : events -> (string * Timebase.t) list
(** Labelled instants in order, for {!Timeline.render}. *)

val on_demand :
  Ra_device.Device.t ->
  Verifier.t ->
  Mp.config ->
  ?hooks:Mp.hooks ->
  net_delay:Timebase.t ->
  auth_time:Timebase.t ->
  on_done:(events -> unit) ->
  unit ->
  unit
(** Run one full round starting now: Vrf draws a fresh nonce and sends the
    request ([net_delay] later it arrives), the prover authenticates it
    ([auth_time] of CPU at the MP's priority), runs the MP, and the report
    travels back. Verification checks both the MAC and nonce freshness. *)
