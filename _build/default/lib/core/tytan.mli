(** TyTAN-style per-process attestation (Section 3.1).

    Memory is split into per-process regions; each region is measured as
    its own interruptible unit. The process being measured is suspended —
    it cannot move itself — so *single-process* malware is always caught.
    But isolation is per process: malware spread over two colluding
    processes hands the payload back and forth so it is never inside the
    region currently being measured. This module reproduces exactly that
    paragraph of the paper. *)

type process = {
  name : string;
  first_block : int;
  block_span : int;  (** contiguous blocks owned by this process *)
}

type config = {
  processes : process list;  (** must partition [0, blocks) *)
  hash : Ra_crypto.Algo.hash;
  priority : int;
}

val partition : Ra_device.Device.t -> names:string list -> process list
(** Split the device's blocks evenly across [names] (earlier processes get
    the remainder blocks). *)

type hooks = {
  on_region_start : measured:process -> unit;
      (** the region's process is now suspended; *other* processes may act *)
  on_region_done : measured:process -> unit;
}

val null_hooks : hooks

val run :
  Ra_device.Device.t ->
  config ->
  nonce:Bytes.t ->
  ?hooks:hooks ->
  on_complete:((process * Report.t) list -> unit) ->
  unit ->
  unit
(** Measure every process region in list order; each region report is
    MAC'd over a nonce extended with the process name. Raises
    [Invalid_argument] if the processes do not partition memory. *)

val verify_all :
  Verifier.t -> (process * Report.t) list -> (string * Verifier.verdict) list
(** Region-verify each report against the shared expected image (region
    nonces are carried inside the reports). *)
