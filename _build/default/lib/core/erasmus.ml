open Ra_sim
open Ra_device

type config = {
  mp : Mp.config;
  period : Timebase.t;
  first_at : Timebase.t;
  capacity : int;
  defer_if_app_running : Timebase.t option;
}

let default_config =
  {
    mp = Mp.default_config;
    period = Timebase.s 10;
    first_at = Timebase.zero;
    capacity = 32;
    defer_if_app_running = None;
  }

type t = {
  device : Device.t;
  config : config;
  hooks : Mp.hooks;
  mutable running : bool;
  mutable counter : int;
  mutable reports : Report.t list; (* newest first, clipped to capacity *)
}

let counter_nonce counter =
  let b = Bytes.create 8 in
  Ra_crypto.Bytesutil.store64_be b 0 (Int64.of_int counter);
  b

let store t report =
  let rec clip n = function
    | [] -> []
    | _ when n = 0 -> []
    | r :: rest -> r :: clip (n - 1) rest
  in
  t.reports <- clip t.config.capacity (report :: t.reports)

let rec measure t =
  if t.running then begin
    let eng = t.device.Device.engine in
    let busy_with_higher_priority () =
      match Cpu.running t.device.Device.cpu with
      | Some (_, priority) -> priority > t.config.mp.Mp.priority
      | None -> false
    in
    match t.config.defer_if_app_running with
    | Some delay when busy_with_higher_priority () ->
      Engine.record eng ~tag:"erasmus" "measurement deferred (app running)";
      ignore (Engine.schedule_after eng ~delay (fun _ -> measure t))
    | Some _ | None ->
      t.counter <- t.counter + 1;
      let counter = t.counter in
      Engine.recordf eng ~tag:"erasmus" "self-measurement #%d starts" counter;
      Mp.run t.device
        { t.config.mp with Mp.counter = Some counter }
        ~nonce:(counter_nonce counter) ~hooks:t.hooks
        ~on_complete:(fun report ->
          store t report;
          Engine.recordf eng ~tag:"erasmus" "self-measurement #%d stored" counter)
        ();
      ignore
        (Engine.schedule_after eng ~delay:t.config.period (fun _ -> measure t))
  end

let start device ?(hooks = Mp.null_hooks) config =
  if config.capacity < 1 then invalid_arg "Erasmus.start: capacity < 1";
  let t = { device; config; hooks; running = true; counter = 0; reports = [] } in
  ignore
    (Engine.schedule device.Device.engine ~at:config.first_at (fun _ -> measure t));
  t

let stop t = t.running <- false

let stored t = List.rev t.reports

let collect t ~max:limit =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | r :: rest -> r :: take (n - 1) rest
  in
  List.rev (take limit t.reports)

let measurements_taken t = t.counter

let on_demand_measure t ~nonce ~on_complete =
  t.counter <- t.counter + 1;
  Mp.run t.device
    { t.config.mp with Mp.counter = Some t.counter }
    ~hooks:t.hooks ~nonce
    ~on_complete:(fun report ->
      store t report;
      on_complete report)
    ()
