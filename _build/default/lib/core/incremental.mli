(** Incremental attestation over a Merkle tree: after one full measurement,
    each attestation re-hashes only the blocks written since the previous
    one (plus log-depth tree paths) and MACs the fresh root. MP cost scales
    with churn, not memory size — which directly shrinks the Section 2.5
    availability window.

    The dirty set comes from the memory write journal, standing in for the
    MPU write-trap / page-dirty-bit hardware a real deployment would use;
    like that hardware, it also sees the malware's own writes, which is
    exactly why infection stays detectable. *)

open Ra_sim

type t

val start :
  Ra_device.Device.t ->
  ?hash:Ra_crypto.Algo.hash ->
  ?priority:int ->
  on_ready:(unit -> unit) ->
  unit ->
  t
(** Build the initial tree with a full-measurement-priced CPU job;
    [on_ready] fires when the prover can serve incremental attestations. *)

type report = {
  nonce : Bytes.t;
  root_mac : Bytes.t;  (** MAC over nonce and the tree root *)
  dirty_blocks : int;  (** blocks re-hashed this round *)
  t_start : Timebase.t;
  t_end : Timebase.t;
}

val attest : t -> nonce:Bytes.t -> on_complete:(report -> unit) -> unit
(** Refresh dirty leaves, recompute paths, MAC the root. Raises [Failure]
    if called before [on_ready]. *)

val expected_root :
  Ra_crypto.Algo.hash -> expected_image:Bytes.t -> block_size:int -> Bytes.t
(** The verifier's mirror computation over the benign image. *)

val verify :
  key:Bytes.t ->
  hash:Ra_crypto.Algo.hash ->
  expected_root:Bytes.t ->
  report ->
  Verifier.verdict

val attestation_cost :
  Ra_device.Device.t -> hash:Ra_crypto.Algo.hash -> dirty:int -> Timebase.t
(** Model cost of one incremental round with [dirty] changed blocks:
    re-hash each dirty block plus its log-depth path. Used by the harness
    to chart cost vs churn. *)
