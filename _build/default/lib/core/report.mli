(** The attestation report a prover returns to the verifier. *)

open Ra_sim

type t = {
  scheme_name : string;
  hash : Ra_crypto.Algo.hash;
  nonce : Bytes.t;
  order : int array;  (** blocks in measurement order *)
  mac : Bytes.t;  (** keyed digest over nonce, counter and block stream *)
  data_copy : (int * Bytes.t) list;
      (** contents of volatile data blocks as measured (Section 2.3) *)
  t_start : Timebase.t;  (** ts: measurement started *)
  t_end : Timebase.t;  (** te: measurement finished *)
  t_release : Timebase.t;  (** tr: all locks gone; equals [t_end] without
                               an extension *)
  signature : Ra_device.Cost_model.signature_alg option;
      (** which signature was charged on top of the MAC, if any *)
  counter : int option;  (** monotonic counter (self-measurement / SeED) *)
}

val pp : Format.formatter -> t -> unit
(** One-line summary: scheme, window, MAC prefix. *)

val mac_hex : t -> string

(** {2 Wire format}

    Reports travel from prover to verifier; the binary encoding below is
    length-prefixed and versioned ([RARPT1]). Decoding performs full bounds
    checking and never trusts lengths from the wire. *)

val encode : t -> Bytes.t

val decode : Bytes.t -> (t, string) result
(** Inverse of {!encode}. Returns [Error reason] on truncated input, bad
    magic, unknown enum values, or trailing garbage. *)
