(** ASCII timeline rendering for the paper's Figures 1 and 4. *)

open Ra_sim

val render : ?width:int -> (string * Timebase.t) list -> string
(** Lay labelled instants on a scaled axis:

    {v
    |--1----2--------3--------4-|
    0 s                     2.4 s
     [1] t=0 s        request sent
     ...
    v}

    Markers sharing a column are stacked in the legend. The list must be
    non-empty; [width] is the axis width in columns (default 72). *)

val render_profile :
  ?width:int -> label:string -> (Timebase.t * bool) list -> string
(** Render a sampled boolean profile (e.g. a consistency profile) as a
    strip of [#] (true) and [.] (false) with a time scale. *)
