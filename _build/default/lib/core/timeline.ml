open Ra_sim

let render ?(width = 72) markers =
  match markers with
  | [] -> invalid_arg "Timeline.render: empty"
  | _ :: _ ->
    let times = List.map snd markers in
    let t_min = List.fold_left min (List.hd times) times in
    let t_max = List.fold_left max (List.hd times) times in
    let span = max 1 (Timebase.sub t_max t_min) in
    let column time = Timebase.sub time t_min * (width - 1) / span in
    let axis = Bytes.make width '-' in
    let numbered = List.mapi (fun i (label, time) -> (i + 1, label, time)) markers in
    List.iter
      (fun (i, _, time) ->
        let col = column time in
        let c = if i < 10 then Char.chr (Char.code '0' + i) else '*' in
        Bytes.set axis col c)
      numbered;
    let buf = Buffer.create 256 in
    Buffer.add_string buf ("|" ^ Bytes.to_string axis ^ "|\n");
    Buffer.add_string buf
      (Printf.sprintf "%-*s%s\n" (width - 8) (Timebase.to_string t_min)
         (Timebase.to_string t_max));
    List.iter
      (fun (i, label, time) ->
        Buffer.add_string buf
          (Printf.sprintf " [%d] t=%-12s %s\n" i (Timebase.to_string time) label))
      numbered;
    Buffer.contents buf

let render_profile ?(width = 72) ~label profile =
  match profile with
  | [] -> invalid_arg "Timeline.render_profile: empty"
  | _ :: _ ->
    let times = List.map fst profile in
    let t_min = List.fold_left min (List.hd times) times in
    let t_max = List.fold_left max (List.hd times) times in
    let span = max 1 (Timebase.sub t_max t_min) in
    let strip = Bytes.make width ' ' in
    List.iter
      (fun (time, value) ->
        let col = Timebase.sub time t_min * (width - 1) / span in
        Bytes.set strip col (if value then '#' else '.'))
      profile;
    Printf.sprintf "%s\n|%s|\n%-*s%s\n" label (Bytes.to_string strip) (width - 8)
      (Timebase.to_string t_min)
      (Timebase.to_string t_max)
