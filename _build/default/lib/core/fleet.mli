(** Fleet management: one verifier responsible for many provers.

    Each device's attestation key is HKDF-derived from a master secret and
    the device identifier, so the verifier stores one secret and a device
    roster rather than per-device key material, and a leaked device key
    compromises only that device. *)

open Ra_sim

type t

type device_id = string

val create : master_secret:Bytes.t -> t

val derive_key : t -> device_id -> Bytes.t
(** The 32-byte per-device attestation key. Deterministic per (master,
    id). *)

val provision :
  t -> device_id -> ?config:Ra_device.Device.config -> unit -> Ra_device.Device.t
(** Build a device whose key is the derived key and whose firmware seed is
    derived from the id; registers the device in the roster. The [config]
    fields [key] and [seed] are overridden. Raises [Invalid_argument] if
    the id is already enrolled. *)

val verifier_for : t -> device_id -> Verifier.t
(** The verifier view (expected image + derived key) for an enrolled
    device. Raises [Not_found] for unknown ids. *)

val enrolled : t -> device_id list
(** Roster, in enrolment order. *)

val device : t -> device_id -> Ra_device.Device.t
(** Raises [Not_found] for unknown ids. *)

type roll_call = {
  clean : device_id list;
  tampered : device_id list;
}

val attest_all : t -> ?net_delay:Timebase.t -> Mp.config -> roll_call
(** Run the full on-demand protocol against every enrolled device (each on
    its own engine) and partition the roster by verdict. *)
