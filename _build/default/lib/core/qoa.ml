open Ra_sim

type t = { t_m : Timebase.t; t_c : Timebase.t; mp_duration : Timebase.t }

let detection_probability t ~dwell =
  if t.t_m <= 0 then invalid_arg "Qoa: t_m must be positive";
  if dwell < 0 then invalid_arg "Qoa: negative dwell";
  Float.min 1.
    (float_of_int (Timebase.add dwell t.mp_duration) /. float_of_int t.t_m)

let min_dwell_always_detected t = Timebase.sub t.t_m t.mp_duration

let worst_case_detection_delay t =
  Timebase.add t.t_m (Timebase.add t.mp_duration t.t_c)

let on_demand ~mp_duration ~request_period =
  { t_m = request_period; t_c = request_period; mp_duration }

let pp fmt t =
  Format.fprintf fmt "QoA(T_M=%s, T_C=%s, MP=%s)"
    (Timebase.to_string t.t_m)
    (Timebase.to_string t.t_c)
    (Timebase.to_string t.mp_duration)
