(** Small statistics toolkit for experiment harnesses. *)

type t
(** An online accumulator (Welford's algorithm) that also retains samples
    for quantile queries. *)

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0 if empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 with fewer than two samples. *)

val stddev : t -> float

val min_value : t -> float
(** Raises [Invalid_argument] if empty. *)

val max_value : t -> float
(** Raises [Invalid_argument] if empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]], linear interpolation between
    order statistics. Raises [Invalid_argument] if empty. *)

val total : t -> float

val binomial_confidence : successes:int -> trials:int -> float * float
(** 95% Wilson score interval for a proportion. *)

val histogram : t -> bins:int -> (float * float * int) array
(** [(lo, hi, count)] per bin over the sample range. Empty array if no
    samples or [bins <= 0]. *)
