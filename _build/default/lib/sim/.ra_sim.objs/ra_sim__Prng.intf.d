lib/sim/prng.mli: Bytes
