lib/sim/trace.mli: Format Timebase
