lib/sim/engine.ml: Hashtbl Heap Printf Prng Timebase Trace
