lib/sim/stats.ml: Array Float List
