lib/sim/channel.ml: Engine Prng Timebase
