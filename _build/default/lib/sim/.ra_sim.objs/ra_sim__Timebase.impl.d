lib/sim/timebase.ml: Float Format Int
