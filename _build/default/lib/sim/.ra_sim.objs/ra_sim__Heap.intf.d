lib/sim/heap.mli:
