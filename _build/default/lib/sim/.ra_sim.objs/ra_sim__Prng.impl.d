lib/sim/prng.ml: Array Bytes Char Int64
