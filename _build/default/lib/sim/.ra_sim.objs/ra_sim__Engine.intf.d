lib/sim/engine.mli: Format Prng Timebase Trace
