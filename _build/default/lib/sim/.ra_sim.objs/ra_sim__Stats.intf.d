lib/sim/stats.mli:
