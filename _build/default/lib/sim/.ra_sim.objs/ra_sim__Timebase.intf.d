lib/sim/timebase.mli: Format
