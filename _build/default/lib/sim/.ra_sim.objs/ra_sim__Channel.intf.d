lib/sim/channel.mli: Engine Timebase
