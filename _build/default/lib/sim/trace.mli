(** Structured event log of a simulation run.

    Every component records [(time, tag, detail)] entries; the log can then be
    filtered and rendered as the timelines of the paper's Figures 1 and 4. *)

type entry = { time : Timebase.t; tag : string; detail : string }

type t

val create : unit -> t

val record : t -> time:Timebase.t -> tag:string -> string -> unit
(** Append an entry. Entries are kept in recording order. *)

val recordf :
  t -> time:Timebase.t -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant of {!record}. *)

val entries : t -> entry list
(** All entries, oldest first. *)

val filter : t -> tag:string -> entry list
(** Entries whose tag equals [tag]. *)

val length : t -> int

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** One line per entry: [t=<time> <tag>: <detail>]. *)

val pp_entry : Format.formatter -> entry -> unit
