(** Virtual time. All simulation time is kept in integer nanoseconds so that
    event ordering never depends on floating-point rounding. *)

type t = int
(** Nanoseconds since simulation start. *)

val zero : t

val ns : int -> t
val us : int -> t
val ms : int -> t
val s : int -> t
val minutes : int -> t

val of_seconds : float -> t
(** Convert a float duration in seconds, rounding to the nearest ns. *)

val to_seconds : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Human-friendly rendering, e.g. ["1.234 ms"], ["7.00 s"]. *)

val to_string : t -> string
