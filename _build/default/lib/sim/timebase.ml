type t = int

let zero = 0

let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let s n = n * 1_000_000_000
let minutes n = n * 60_000_000_000

let of_seconds f = int_of_float (Float.round (f *. 1e9))

let to_seconds t = float_of_int t /. 1e9

let add = ( + )
let sub = ( - )
let compare = Int.compare

(* Pick the largest unit that keeps the mantissa >= 1, as oscilloscopes do. *)
let pp fmt t =
  let f = float_of_int t in
  if t = 0 then Format.fprintf fmt "0 s"
  else if f >= 1e9 then Format.fprintf fmt "%.3f s" (f /. 1e9)
  else if f >= 1e6 then Format.fprintf fmt "%.3f ms" (f /. 1e6)
  else if f >= 1e3 then Format.fprintf fmt "%.3f us" (f /. 1e3)
  else Format.fprintf fmt "%d ns" t

let to_string t = Format.asprintf "%a" pp t
