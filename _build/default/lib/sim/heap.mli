(** Minimal binary min-heap keyed by [(int, int)] pairs.

    The primary key is the event time, the secondary key a monotonically
    increasing sequence number so that ties break in insertion order —
    the property a deterministic discrete-event simulator needs. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> key:int -> seq:int -> 'a -> unit
(** Insert a value with priority [(key, seq)]. O(log n). *)

val pop : 'a t -> (int * int * 'a) option
(** Remove and return the minimum [(key, seq, value)]. O(log n). *)

val peek : 'a t -> (int * int * 'a) option
(** Return the minimum without removing it. O(1). *)

val clear : 'a t -> unit
