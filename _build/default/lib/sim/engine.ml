type event_id = int

type t = {
  mutable clock : Timebase.t;
  mutable next_seq : int;
  mutable live : int;
  queue : (t -> unit) Heap.t;
  cancelled : (event_id, unit) Hashtbl.t;
  prng : Prng.t;
  trace : Trace.t;
}

let create ?(seed = 42) () =
  {
    clock = Timebase.zero;
    next_seq = 0;
    live = 0;
    queue = Heap.create ();
    cancelled = Hashtbl.create 64;
    prng = Prng.create ~seed;
    trace = Trace.create ();
  }

let now t = t.clock

let prng t = t.prng

let trace t = t.trace

let record t ~tag detail = Trace.record t.trace ~time:t.clock ~tag detail

let recordf t ~tag fmt = Trace.recordf t.trace ~time:t.clock ~tag fmt

let schedule t ~at callback =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %d is before now %d" at t.clock);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.live <- t.live + 1;
  Heap.push t.queue ~key:at ~seq callback;
  seq

let schedule_after t ~delay callback =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(Timebase.add t.clock delay) callback

let cancel t id =
  if not (Hashtbl.mem t.cancelled id) then begin
    Hashtbl.replace t.cancelled id ();
    t.live <- t.live - 1
  end

let pending t = t.live

(* Pop until a non-cancelled event is found. *)
let rec pop_live t =
  match Heap.pop t.queue with
  | None -> None
  | Some (time, seq, callback) ->
    if Hashtbl.mem t.cancelled seq then begin
      Hashtbl.remove t.cancelled seq;
      pop_live t
    end
    else Some (time, callback)

let step t =
  match pop_live t with
  | None -> false
  | Some (time, callback) ->
    t.clock <- time;
    t.live <- t.live - 1;
    callback t;
    true

let rec peek_live t =
  match Heap.peek t.queue with
  | None -> None
  | Some (time, seq, _) ->
    if Hashtbl.mem t.cancelled seq then begin
      ignore (Heap.pop t.queue);
      Hashtbl.remove t.cancelled seq;
      peek_live t
    end
    else Some time

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
    let continue = ref true in
    while !continue do
      match peek_live t with
      | Some time when time <= horizon -> ignore (step t)
      | Some _ | None -> continue := false
    done;
    if t.clock < horizon then t.clock <- horizon
