type entry = { time : Timebase.t; tag : string; detail : string }

type t = { mutable rev_entries : entry list; mutable count : int }

let create () = { rev_entries = []; count = 0 }

let record t ~time ~tag detail =
  t.rev_entries <- { time; tag; detail } :: t.rev_entries;
  t.count <- t.count + 1

let recordf t ~time ~tag fmt =
  Format.kasprintf (fun detail -> record t ~time ~tag detail) fmt

let entries t = List.rev t.rev_entries

let filter t ~tag = List.filter (fun e -> String.equal e.tag tag) (entries t)

let length t = t.count

let clear t =
  t.rev_entries <- [];
  t.count <- 0

let pp_entry fmt e =
  Format.fprintf fmt "t=%-12s %-14s %s" (Timebase.to_string e.time) e.tag e.detail

let pp fmt t =
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_entry e) (entries t)
