(** A point-to-point message channel with delay, jitter, loss and
    duplication — the network between verifier and prover. *)

type config = {
  delay : Timebase.t;  (** base one-way latency *)
  jitter : Timebase.t;  (** extra uniform latency in [\[0, jitter\]] *)
  loss : float;  (** independent per-message loss probability *)
  duplicate : float;  (** probability a delivered message arrives twice *)
}

val ideal : config
(** 40 ms, no jitter, no loss, no duplication. *)

type 'a t

val create : Engine.t -> config -> deliver:('a -> unit) -> 'a t
(** [deliver] runs at the (jittered) arrival time of each surviving copy. *)

val send : 'a t -> 'a -> unit
(** Queue a message now. Loss and duplication are decided per send from the
    engine's random stream, so runs are reproducible. *)

val sent : 'a t -> int
(** Messages handed to {!send}. *)

val delivered : 'a t -> int
(** Copies actually delivered (duplicates count twice). *)
