type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let ensure_capacity h =
  let cap = Array.length h.data in
  if h.size >= cap then begin
    let dummy = h.data.(0) in
    let fresh = Array.make (max 8 (2 * cap)) dummy in
    Array.blit h.data 0 fresh 0 h.size;
    h.data <- fresh
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
  if r < h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h ~key ~seq value =
  let entry = { key; seq; value } in
  if Array.length h.data = 0 then h.data <- Array.make 8 entry
  else ensure_capacity h;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h =
  if h.size = 0 then None
  else
    let e = h.data.(0) in
    Some (e.key, e.seq, e.value)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some (top.key, top.seq, top.value)
  end

let clear h = h.size <- 0
