type config = {
  delay : Timebase.t;
  jitter : Timebase.t;
  loss : float;
  duplicate : float;
}

let ideal = { delay = Timebase.ms 40; jitter = 0; loss = 0.; duplicate = 0. }

type 'a t = {
  engine : Engine.t;
  config : config;
  deliver : 'a -> unit;
  rng : Prng.t;
  mutable sent : int;
  mutable delivered : int;
}

let create engine config ~deliver =
  if config.loss < 0. || config.loss > 1. then invalid_arg "Channel: bad loss";
  if config.duplicate < 0. || config.duplicate > 1. then
    invalid_arg "Channel: bad duplicate";
  { engine; config; deliver; rng = Prng.split (Engine.prng engine); sent = 0; delivered = 0 }

let deliver_copy t message =
  let latency =
    Timebase.add t.config.delay
      (if t.config.jitter > 0 then Prng.int t.rng ~bound:(t.config.jitter + 1) else 0)
  in
  ignore
    (Engine.schedule_after t.engine ~delay:latency (fun _ ->
         t.delivered <- t.delivered + 1;
         t.deliver message))

let send t message =
  t.sent <- t.sent + 1;
  if not (Prng.bernoulli t.rng ~p:t.config.loss) then begin
    deliver_copy t message;
    if Prng.bernoulli t.rng ~p:t.config.duplicate then deliver_copy t message
  end

let sent t = t.sent

let delivered t = t.delivered
