type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable sum : float;
  mutable samples : float list; (* reverse order of insertion *)
  mutable sorted : float array option; (* cache, invalidated by add *)
}

let create () = { n = 0; mean = 0.; m2 = 0.; sum = 0.; samples = []; sorted = None }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  t.sum <- t.sum +. x;
  t.samples <- x :: t.samples;
  t.sorted <- None

let count t = t.n

let mean t = if t.n = 0 then 0. else t.mean

let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let sorted_samples t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.of_list t.samples in
    Array.sort Float.compare a;
    t.sorted <- Some a;
    a

let min_value t =
  if t.n = 0 then invalid_arg "Stats.min_value: empty";
  (sorted_samples t).(0)

let max_value t =
  if t.n = 0 then invalid_arg "Stats.max_value: empty";
  let a = sorted_samples t in
  a.(Array.length a - 1)

let percentile t p =
  if t.n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let a = sorted_samples t in
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let total t = t.sum

(* Wilson score interval: well-behaved near 0 and 1, unlike the normal
   approximation, which matters for rare-escape experiments. *)
let binomial_confidence ~successes ~trials =
  if trials = 0 then (0., 1.)
  else begin
    let z = 1.959964 in
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    let z2 = z *. z in
    let denom = 1. +. (z2 /. n) in
    let center = (p +. (z2 /. (2. *. n))) /. denom in
    let spread =
      z *. sqrt ((p *. (1. -. p) /. n) +. (z2 /. (4. *. n *. n))) /. denom
    in
    (Float.max 0. (center -. spread), Float.min 1. (center +. spread))
  end

let histogram t ~bins =
  if t.n = 0 || bins <= 0 then [||]
  else begin
    let lo = min_value t and hi = max_value t in
    let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1. in
    let counts = Array.make bins 0 in
    List.iter
      (fun x ->
        let i = int_of_float ((x -. lo) /. width) in
        let i = if i >= bins then bins - 1 else i in
        counts.(i) <- counts.(i) + 1)
      t.samples;
    Array.mapi
      (fun i c ->
        let b_lo = lo +. (float_of_int i *. width) in
        (b_lo, b_lo +. width, c))
      counts
  end
