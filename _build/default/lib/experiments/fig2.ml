open Ra_device

let kib = 1024
let mib = 1024 * 1024
let gib = 1024 * 1024 * 1024

let sizes =
  [
    kib;
    10 * kib;
    100 * kib;
    mib;
    10 * mib;
    100 * mib;
    gib;
    2 * gib;
  ]

let size_label bytes =
  if bytes >= gib then Printf.sprintf "%dGB" (bytes / gib)
  else if bytes >= mib then Printf.sprintf "%dMB" (bytes / mib)
  else Printf.sprintf "%dKB" (bytes / kib)

let seconds t = Ra_sim.Timebase.to_seconds t

let format_time s =
  if s >= 1. then Printf.sprintf "%.2f s" s
  else if s >= 1e-3 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else if s >= 1e-6 then Printf.sprintf "%.2f us" (s *. 1e6)
  else Printf.sprintf "%.0f ns" (s *. 1e9)

let hash_series cost =
  List.map
    (fun hash ->
      ( Ra_crypto.Algo.hash_name hash,
        List.map
          (fun bytes ->
            (size_label bytes, format_time (seconds (Cost_model.hash_time cost hash ~bytes))))
          sizes ))
    Ra_crypto.Algo.all_hashes

let signature_series cost =
  List.map
    (fun alg ->
      ( Cost_model.signature_name alg,
        List.map
          (fun bytes ->
            let total =
              Cost_model.measurement_time cost Ra_crypto.Algo.SHA_256
                ~signature:alg ~bytes ()
            in
            (size_label bytes, format_time (seconds total)))
          sizes ))
    Cost_model.all_signatures

let render cost =
  "Fig. 2a — hashing time vs memory size (" ^ cost.Cost_model.platform ^ ")\n"
  ^ Tablefmt.render_series ~x_label:"size" ~series:(hash_series cost)
  ^ "\nFig. 2b — MP time with hash-and-sign (SHA-256 + signature)\n"
  ^ Tablefmt.render_series ~x_label:"size" ~series:(signature_series cost)

let crossover_table cost =
  let rows =
    List.concat_map
      (fun hash ->
        List.map
          (fun alg ->
            let bytes = Cost_model.crossover_bytes cost hash alg in
            [
              Ra_crypto.Algo.hash_name hash;
              Cost_model.signature_name alg;
              Printf.sprintf "%.2f MB" (float_of_int bytes /. float_of_int mib);
            ])
          Cost_model.all_signatures)
      Ra_crypto.Algo.all_hashes
  in
  "E8 — input size where hashing cost overtakes signing cost\n"
  ^ Tablefmt.render ~header:[ "hash"; "signature"; "crossover size" ] rows

type claim = { label : string; expected : string; measured : string; holds : bool }

let claims cost =
  let sha256_100mb =
    seconds (Cost_model.hash_time cost Ra_crypto.Algo.SHA_256 ~bytes:(100 * mib))
  in
  let fastest_2gb =
    List.fold_left
      (fun acc hash ->
        Float.min acc (seconds (Cost_model.hash_time cost hash ~bytes:(2 * gib))))
      infinity Ra_crypto.Algo.all_hashes
  in
  let mp_1mb =
    seconds (Cost_model.hash_time cost Ra_crypto.Algo.SHA_256 ~bytes:mib)
  in
  let sig_insignificant =
    (* "most signature algorithms": all but RSA-4096 cost under 2x the
       1 MB hashing time on this platform *)
    List.for_all
      (fun alg -> seconds (Cost_model.sign_time cost alg) < 2. *. mp_1mb)
      [ Cost_model.RSA_1024; Cost_model.ECDSA_160; Cost_model.ECDSA_224; Cost_model.ECDSA_256 ]
  in
  [
    {
      label = "hash 100MB with SHA-256";
      expected = "~0.9 s";
      measured = format_time sha256_100mb;
      holds = sha256_100mb > 0.7 && sha256_100mb < 1.1;
    };
    {
      label = "hash 2GB with fastest primitive";
      expected = "~14 s";
      measured = format_time fastest_2gb;
      holds = fastest_2gb > 11. && fastest_2gb < 17.;
    };
    {
      label = "MP at 1MB exceeds 0.01 s";
      expected = "> 0.01 s";
      measured = format_time mp_1mb;
      holds = mp_1mb > 0.005;
    };
    {
      label = "cheap signatures insignificant beyond 1MB";
      expected = "sign < 2x hash(1MB)";
      measured = (if sig_insignificant then "yes" else "no");
      holds = sig_insignificant;
    };
  ]

let render_claims cost =
  let rows =
    List.map
      (fun c ->
        [ c.label; c.expected; c.measured; (if c.holds then "OK" else "MISMATCH") ])
      (claims cost)
  in
  "Fig. 2 claims check\n"
  ^ Tablefmt.render ~header:[ "claim"; "paper"; "model"; "status" ] rows
