(** Experiment E7 — the Section 2.5 scenario: a fire breaks out while the
    prover is measuring 1 GiB of memory. How long until the periodic
    sensor-actuator application raises the alarm, per scheme? *)

open Ra_sim
open Ra_core

type result = {
  scheme : string;
  mp_duration : Timebase.t;
  alarm_latency : Timebase.t option;  (** None: fire never sensed in horizon *)
  max_app_latency_s : float;
  deadline_misses : int;
  app_blocked_ns : Timebase.t;
}

val run_scheme :
  ?seed:int ->
  ?attested_bytes:int ->
  ?fire_offset:Timebase.t ->
  Scheme.t ->
  result
(** App: 1 s period, 2 ms execution, 1 s deadline, writing into four data
    blocks. The fire starts [fire_offset] (default 2 s) after the
    measurement begins. Attested size defaults to 1 GiB. *)

val schemes : Scheme.t list

val render : ?seed:int -> unit -> string
