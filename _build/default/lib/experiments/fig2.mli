(** Experiment E2 — Figure 2: timings of hash functions and signatures on
    the (modeled) ODROID-XU4 across memory sizes, plus the Section 2.4
    hash-vs-signature crossover (E8). *)

val sizes : int list
(** 1 KB to 2 GB, decade steps plus the 2 GB endpoint. *)

val size_label : int -> string

val hash_series : Ra_device.Cost_model.t -> (string * (string * string) list) list
(** One series per hash: (size label, seconds) points. *)

val signature_series : Ra_device.Cost_model.t -> (string * (string * string) list) list
(** One series per signature: total MP time = SHA-256 hashing + signing. *)

val render : Ra_device.Cost_model.t -> string
(** The full Fig. 2 table: hash series and signature series. *)

val crossover_table : Ra_device.Cost_model.t -> string
(** E8: for each (hash, signature) pair, the input size at which hashing
    cost overtakes signing cost. *)

type claim = { label : string; expected : string; measured : string; holds : bool }

val claims : Ra_device.Cost_model.t -> claim list
(** The paper's headline Fig. 2 assertions, checked against the model:
    ~0.9 s per 100 MB (SHA-256), ~14 s for 2 GB (fastest hash), MP above
    0.01 s beyond 1 MB making most signature costs insignificant. *)

val render_claims : Ra_device.Cost_model.t -> string
