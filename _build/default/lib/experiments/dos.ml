open Ra_sim
open Ra_device
open Ra_core

type mode = Authenticate_then_drop | Measure_on_request | Non_interactive

let mode_name = function
  | Authenticate_then_drop -> "authenticate-then-drop"
  | Measure_on_request -> "measure-on-request"
  | Non_interactive -> "non-interactive (SeED)"

type result = {
  mode : mode;
  request_rate : float;
  app_max_latency_s : float;
  app_deadline_misses : int;
  attacker_cpu_fraction : float;
}

let auth_time = Timebase.us 200

let run ?(seed = 31) ?(horizon = Timebase.s 30) ~mode ~rate_per_s () =
  let device =
    Device.create
      {
        Device.default_config with
        Device.seed;
        block_size = 256;
        modeled_block_bytes = 1024 * 1024; (* 64 MiB: MP ~ 0.58 s *)
      }
  in
  let eng = device.Device.engine in
  let app =
    App.start eng device.Device.cpu device.Device.memory
      { App.default_config with App.first_activation = Timebase.ms 100 }
  in
  let rng = Prng.split (Engine.prng eng) in
  (* Bogus requests arrive as a Poisson process for the whole horizon. *)
  let serve_request () =
    match mode with
    | Non_interactive -> ()
    | Authenticate_then_drop ->
      ignore
        (Cpu.submit device.Device.cpu ~name:"dos-auth" ~priority:5
           ~duration:auth_time
           ~on_complete:(fun () -> ())
           ())
    | Measure_on_request ->
      ignore
        (Cpu.submit device.Device.cpu ~name:"dos-auth" ~priority:5 ~duration:auth_time
           ~on_complete:(fun () ->
             Mp.run device
               { Mp.default_config with Mp.scheme = Scheme.smart }
               ~nonce:(Prng.bytes rng 16)
               ~on_complete:(fun _ -> ())
               ())
           ())
  in
  if rate_per_s > 0. then begin
    let rec arrival at =
      if at <= horizon then
        ignore
          (Engine.schedule eng ~at (fun _ ->
               serve_request ();
               let gap = Prng.exponential rng ~mean:(1e9 /. rate_per_s) in
               arrival (Timebase.add at (max 1 (int_of_float gap)))))
    in
    arrival (Timebase.ms 200)
  end;
  Engine.run ~until:horizon eng;
  App.stop app;
  Engine.run ~until:(Timebase.add horizon (Timebase.s 20)) eng;
  let elapsed = Timebase.to_seconds (Engine.now eng) in
  let stats = App.latencies app in
  let attacker_busy =
    Cpu.busy_ns device.Device.cpu ~name:"dos-auth"
    + Cpu.busy_ns device.Device.cpu ~name:"mp"
  in
  {
    mode;
    request_rate = rate_per_s;
    app_max_latency_s = (if Stats.count stats = 0 then 0. else Stats.max_value stats);
    app_deadline_misses = App.deadline_misses app;
    attacker_cpu_fraction = float_of_int attacker_busy /. elapsed /. 1e9;
  }

let render ?seed () =
  let rows =
    List.concat_map
      (fun mode ->
        List.map
          (fun rate ->
            let r = run ?seed ~mode ~rate_per_s:rate () in
            [
              mode_name r.mode;
              Printf.sprintf "%.0f/s" r.request_rate;
              Printf.sprintf "%.3f s" r.app_max_latency_s;
              string_of_int r.app_deadline_misses;
              Printf.sprintf "%.1f%%" (r.attacker_cpu_fraction *. 100.);
            ])
          (match mode with
          | Measure_on_request -> [ 0.; 1.; 2.; 10. ]
          | Authenticate_then_drop | Non_interactive -> [ 0.; 10.; 100.; 1000. ]))
      [ Authenticate_then_drop; Measure_on_request; Non_interactive ]
  in
  "E-DoS — request flooding vs prover availability (Section 3.3)\n"
  ^ Tablefmt.render
      ~header:
        [ "prover mode"; "bogus requests"; "max app latency"; "deadline misses"; "CPU burnt" ]
      rows
