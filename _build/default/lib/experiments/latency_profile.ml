open Ra_sim
open Ra_device
open Ra_core

let data_blocks = [ 60; 61; 62; 63 ]

let latency_row ~seed scheme =
  let device =
    Device.create
      {
        Device.default_config with
        Device.seed = seed;
        block_size = 256;
        data_blocks;
      }
  in
  let eng = device.Device.engine in
  let app =
    App.start eng device.Device.cpu device.Device.memory
      {
        App.default_config with
        App.data_blocks;
        write_bytes = 32;
        first_activation = Timebase.ms 100;
      }
  in
  ignore
    (Engine.schedule eng ~at:(Timebase.ms 1500) (fun _ ->
         Mp.run device
           { Mp.default_config with Mp.scheme }
           ~nonce:(Prng.bytes (Engine.prng eng) 16)
           ~on_complete:(fun _ -> ())
           ()));
  Engine.run ~until:(Timebase.s 35) eng;
  App.stop app;
  Engine.run ~until:(Timebase.s 50) eng;
  let stats = App.latencies app in
  let pct p = if Stats.count stats = 0 then 0. else Stats.percentile stats p in
  [
    scheme.Scheme.name;
    Printf.sprintf "%.4f s" (pct 50.);
    Printf.sprintf "%.4f s" (pct 95.);
    Printf.sprintf "%.4f s" (pct 99.);
    Printf.sprintf "%.4f s" (if Stats.count stats = 0 then 0. else Stats.max_value stats);
    string_of_int (App.deadline_misses app);
  ]

let latency_table ?(seed = 29) () =
  let schemes =
    Scheme.all_with_extensions
    @ [
        {
          Scheme.name = "SMARM+Cpy-Lock";
          atomic = false;
          locking = Scheme.Cpy_lock;
          order = Scheme.Shuffled;
          zero_data = false;
        };
      ]
  in
  "Real-time profile — app latency while attesting 1 GiB (1 s period, 1 s deadline)\n"
  ^ Tablefmt.render
      ~header:[ "scheme"; "p50"; "p95"; "p99"; "max"; "deadline misses" ]
      (List.map (fun s -> latency_row ~seed s) schemes)

let lock_gantt ?(seed = 29) scheme =
  let blocks = 16 in
  let device =
    Device.create
      {
        Device.default_config with
        Device.seed = seed;
        blocks;
        block_size = 256;
        modeled_block_bytes = 28 * 1024 * 1024; (* ~0.25 s per block: ~4 s MP *)
      }
  in
  let eng = device.Device.engine in
  let samples = 64 in
  let horizon = Timebase.s 6 in
  let grid = Array.make_matrix blocks samples false in
  for s = 0 to samples - 1 do
    ignore
      (Engine.schedule eng
         ~at:(horizon * s / samples)
         (fun _ ->
           for b = 0 to blocks - 1 do
             grid.(b).(s) <- Memory.is_locked device.Device.memory b
           done))
  done;
  ignore
    (Engine.schedule eng ~at:(Timebase.ms 500) (fun _ ->
         Mp.run device
           { Mp.default_config with Mp.scheme }
           ~nonce:(Prng.bytes (Engine.prng eng) 16)
           ~on_complete:(fun _ -> ())
           ()));
  Engine.run ~until:horizon eng;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s lock occupancy (rows = blocks, -> time over %s)\n"
       scheme.Scheme.name (Timebase.to_string horizon));
  for b = 0 to blocks - 1 do
    Buffer.add_string buf (Printf.sprintf "%2d |" b);
    for s = 0 to samples - 1 do
      Buffer.add_char buf (if grid.(b).(s) then '#' else '.')
    done;
    Buffer.add_string buf "|\n"
  done;
  Buffer.contents buf

let render ?seed () =
  latency_table ?seed ()
  ^ "\n"
  ^ lock_gantt ?seed Scheme.all_lock
  ^ "\n"
  ^ lock_gantt ?seed Scheme.dec_lock
  ^ "\n"
  ^ lock_gantt ?seed Scheme.inc_lock
