(** Experiment E4 — Figure 4 and the Section 3.1 consistency claims.

    A writer injects changes at the four canonical instants relative to the
    measurement window — A (before ts), B (inside [ts, te]), C (inside
    [te, tr]), D (after tr) — and the checker reports, per locking scheme,
    at which instants the report is consistent and whether each claimed
    window holds. *)

open Ra_sim
open Ra_core

type result = {
  scheme : string;
  t_start : Timebase.t;
  t_end : Timebase.t;
  t_release : Timebase.t;
  consistent_at_start : bool;
  consistent_at_end : bool;
  consistent_at_release : bool;
  consistent_throughout_measure : bool;  (** over [ts, te] *)
  consistent_throughout_release : bool;  (** over [ts, tr] (ext schemes) *)
  write_b_landed_in_window : bool;
      (** did the attempted during-measurement write actually modify memory
          inside [ts, te]? (locking defers it) *)
  profile : (Timebase.t * bool) list;
}

val run_scheme : ?seed:int -> Scheme.t -> result
(** 8 blocks, ~0.5 s per block; writes attempted at A/B/C/D hitting block 2.
    Extension schemes hold locks 2 s past te. *)

val schemes : Scheme.t list
(** No-Lock, All-Lock, All-Lock-Ext, Dec-Lock, Inc-Lock, Inc-Lock-Ext. *)

val render : ?seed:int -> unit -> string
(** Summary table over {!schemes} plus a consistency strip per scheme. *)

type expectation = { scheme : string; at_start : bool; at_end : bool; throughout : bool }

val expected : expectation list
(** The paper's Section 3.1 claims, for test comparison. *)
