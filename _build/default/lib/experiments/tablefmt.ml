let render ~header rows =
  let columns = List.length header in
  let pad row =
    let missing = columns - List.length row in
    if missing > 0 then row @ List.init missing (fun _ -> "") else row
  in
  let rows = List.map pad rows in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if i < columns then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let buf = Buffer.create 1024 in
  let emit row =
    List.iteri
      (fun i cell ->
        Buffer.add_string buf (Printf.sprintf "%-*s" widths.(i) cell);
        if i < columns - 1 then Buffer.add_string buf "  ")
      row;
    Buffer.add_char buf '\n'
  in
  emit header;
  emit (List.init columns (fun i -> String.make widths.(i) '-'));
  List.iter emit rows;
  Buffer.contents buf

let render_series ~x_label ~series =
  (* Keep x values in first-appearance order: callers pass them sorted in
     the meaningful (usually numeric) order already. *)
  let xs =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun x ->
        if Hashtbl.mem seen x then false
        else begin
          Hashtbl.add seen x ();
          true
        end)
      (List.concat_map (fun (_, points) -> List.map fst points) series)
  in
  let header = x_label :: List.map fst series in
  let rows =
    List.map
      (fun x ->
        x
        :: List.map
             (fun (_, points) ->
               Option.value ~default:"" (List.assoc_opt x points))
             series)
      xs
  in
  render ~header rows
