open Ra_sim
open Ra_device
open Ra_core

type story = {
  t_m : Timebase.t;
  t_c : Timebase.t;
  infection1 : Timebase.t * Timebase.t;
  infection2 : Timebase.t * Timebase.t;
  infection1_detected : bool;
  infection2_detected : bool;
  measurements : Timebase.t list;
  collections : Timebase.t list;
  markers : (string * Timebase.t) list;
}

let make_device ~seed =
  Device.create
    {
      Device.default_config with
      Device.seed = seed;
      blocks = 64;
      block_size = 256;
      modeled_block_bytes = 1024 * 1024; (* 64 MiB total: MP ~ 0.58 s *)
    }

let mp_duration_model device =
  Cost_model.hash_time device.Device.config.Device.cost Ra_crypto.Algo.SHA_256
    ~bytes:(Device.attested_bytes device)

let install_transient device ~block ~enter ~leave =
  let rng = Prng.split (Engine.prng device.Device.engine) in
  Ra_malware.Malware.install device ~rng ~block ~priority:8
    (Ra_malware.Malware.Transient { enter; leave })

(* A tampered report is attributed to an infection when its measurement
   window overlaps the dwell interval. *)
let window_overlaps report (enter, leave) =
  let ts = report.Report.t_start and te = report.Report.t_end in
  ts <= leave && te >= enter

let run_story ?(seed = 11) () =
  let device = make_device ~seed in
  let eng = device.Device.engine in
  let verifier = Verifier.of_device device in
  let t_m = Timebase.s 10 and t_c = Timebase.s 35 in
  let infection1 = (Timebase.s 13, Timebase.s 16) in
  let infection2 = (Timebase.s 47, Timebase.s 62) in
  let _m1 =
    install_transient device ~block:10 ~enter:(fst infection1) ~leave:(snd infection1)
  in
  let _m2 =
    install_transient device ~block:30 ~enter:(fst infection2) ~leave:(snd infection2)
  in
  let erasmus =
    Erasmus.start device
      { Erasmus.default_config with Erasmus.period = t_m; first_at = t_m }
  in
  let collections = ref [] in
  let collected = ref [] in
  let rec collect_at at =
    if at <= Timebase.s 80 then
      ignore
        (Engine.schedule eng ~at (fun _ ->
             collections := at :: !collections;
             collected := !collected @ Erasmus.collect erasmus ~max:8;
             Engine.recordf eng ~tag:"vrf" "collection visit (%d reports held)"
               (List.length (Erasmus.stored erasmus));
             collect_at (Timebase.add at t_c)))
  in
  collect_at t_c;
  Engine.run ~until:(Timebase.s 80) eng;
  Erasmus.stop erasmus;
  Engine.run ~until:(Timebase.s 85) eng;
  let reports = Erasmus.stored erasmus in
  let tampered =
    List.filter (fun r -> Verifier.verify verifier r = Verifier.Tampered) reports
  in
  let detected infection = List.exists (fun r -> window_overlaps r infection) tampered in
  let measurements = List.map (fun r -> r.Report.t_start) reports in
  let markers =
    List.concat
      [
        List.mapi (fun i t -> (Printf.sprintf "measurement %d" (i + 1), t)) measurements;
        List.map (fun t -> ("collection", t)) (List.rev !collections);
        [
          ("infection 1 enters", fst infection1);
          ("infection 1 leaves", snd infection1);
          ("infection 2 enters", fst infection2);
          ("infection 2 leaves", snd infection2);
        ];
      ]
  in
  let markers = List.sort (fun (_, a) (_, b) -> Timebase.compare a b) markers in
  {
    t_m;
    t_c;
    infection1;
    infection2;
    infection1_detected = detected infection1;
    infection2_detected = detected infection2;
    measurements;
    collections = List.rev !collections;
    markers;
  }

let render_story ?seed () =
  let s = run_story ?seed () in
  let verdict name d expected =
    Printf.sprintf "%s: %s (paper: %s)" name
      (if d then "DETECTED" else "undetected")
      expected
  in
  "Fig. 5 / E6 — QoA: transient malware vs self-measurement schedule\n"
  ^ Printf.sprintf "T_M = %s, T_C = %s\n"
      (Timebase.to_string s.t_m) (Timebase.to_string s.t_c)
  ^ Timeline.render s.markers
  ^ verdict "Infection 1 (dwell between measurements)" s.infection1_detected
      "undetected"
  ^ "\n"
  ^ verdict "Infection 2 (dwell spans a measurement)" s.infection2_detected
      "detected"
  ^ "\n"

let detection_sweep ?(seed = 23) ?(trials = 100) ~t_m ~dwells () =
  let rows =
    List.map
      (fun dwell ->
        let detected = ref 0 in
        let mp_dur = ref Timebase.zero in
        for trial = 0 to trials - 1 do
          let device = make_device ~seed:(seed + (7919 * trial)) in
          let eng = device.Device.engine in
          mp_dur := mp_duration_model device;
          let verifier = Verifier.of_device device in
          let phase =
            Prng.int (Engine.prng eng) ~bound:t_m
          in
          let enter = Timebase.add (Timebase.s 15) phase in
          let leave = Timebase.add enter dwell in
          let _mal = install_transient device ~block:20 ~enter ~leave in
          let erasmus =
            Erasmus.start device
              { Erasmus.default_config with Erasmus.period = t_m; first_at = t_m }
          in
          let horizon = Timebase.add leave (Timebase.add t_m (Timebase.s 5)) in
          Engine.run ~until:horizon eng;
          Erasmus.stop erasmus;
          Engine.run ~until:(Timebase.add horizon (Timebase.s 5)) eng;
          let tampered =
            List.exists
              (fun r -> Verifier.verify verifier r = Verifier.Tampered)
              (Erasmus.stored erasmus)
          in
          if tampered then incr detected
        done;
        let rate = float_of_int !detected /. float_of_int trials in
        let analytic =
          Qoa.detection_probability
            { Qoa.t_m; t_c = t_m; mp_duration = !mp_dur }
            ~dwell
        in
        [
          Timebase.to_string dwell;
          Printf.sprintf "%.2f" rate;
          Printf.sprintf "%.2f" analytic;
        ])
      dwells
  in
  Printf.sprintf
    "E6 sweep — transient malware detection probability (T_M = %s, %d trials)\n"
    (Timebase.to_string t_m) trials
  ^ Tablefmt.render ~header:[ "dwell"; "measured"; "analytic" ] rows

let freshness_table () =
  let mp = Timebase.ms 580 in
  let combos =
    [
      ("on-demand, hourly", Qoa.on_demand ~mp_duration:mp ~request_period:(Timebase.minutes 60));
      ("on-demand, every 5 min", Qoa.on_demand ~mp_duration:mp ~request_period:(Timebase.minutes 5));
      ( "ERASMUS T_M=1min, T_C=1h",
        { Qoa.t_m = Timebase.minutes 1; t_c = Timebase.minutes 60; mp_duration = mp } );
      ( "ERASMUS T_M=10s, T_C=1h",
        { Qoa.t_m = Timebase.s 10; t_c = Timebase.minutes 60; mp_duration = mp } );
      ( "ERASMUS T_M=10s, T_C=5min",
        { Qoa.t_m = Timebase.s 10; t_c = Timebase.minutes 5; mp_duration = mp } );
    ]
  in
  let rows =
    List.map
      (fun (label, q) ->
        [
          label;
          Timebase.to_string (Qoa.min_dwell_always_detected q);
          Timebase.to_string (Qoa.worst_case_detection_delay q);
          Printf.sprintf "%.3f" (Qoa.detection_probability q ~dwell:(Timebase.s 30));
        ])
      combos
  in
  "E6 — decoupling T_M from T_C (Section 3.3)\n"
  ^ Tablefmt.render
      ~header:
        [ "configuration"; "dwell always caught"; "worst-case delay"; "P(detect 30s dwell)" ]
      rows
