open Ra_sim
open Ra_device
open Ra_core

let churn_table ?(blocks = 1024) ?(attested_bytes = 1024 * 1024 * 1024) () =
  let device =
    Device.create
      {
        Device.default_config with
        Device.blocks;
        block_size = 64;
        modeled_block_bytes = attested_bytes / blocks;
      }
  in
  let full =
    Cost_model.hash_time device.Device.config.Device.cost Ra_crypto.Algo.SHA_256
      ~bytes:attested_bytes
  in
  let rows =
    List.map
      (fun dirty ->
        let cost = Incremental.attestation_cost device ~hash:Ra_crypto.Algo.SHA_256 ~dirty in
        [
          string_of_int dirty;
          Printf.sprintf "%.2f%%" (100. *. float_of_int dirty /. float_of_int blocks);
          Timebase.to_string cost;
          Printf.sprintf "%.0fx" (Timebase.to_seconds full /. Timebase.to_seconds cost);
        ])
      [ 0; 1; 4; 16; 64; 256; 1024 ]
  in
  Printf.sprintf
    "Incremental attestation — cost vs churn (%d blocks, 1 GiB, full MP = %s)\n"
    blocks (Timebase.to_string full)
  ^ Tablefmt.render
      ~header:[ "dirty blocks"; "churn"; "round cost"; "speedup vs full" ]
      rows

let live_validation ?(seed = 37) () =
  let device =
    Device.create
      {
        Device.default_config with
        Device.seed;
        blocks = 64;
        block_size = 256;
        modeled_block_bytes = 16 * 1024 * 1024;
      }
  in
  let eng = device.Device.engine in
  let expected_root =
    Incremental.expected_root Ra_crypto.Algo.SHA_256
      ~expected_image:(Memory.initial_image device.Device.memory)
      ~block_size:(Memory.block_size device.Device.memory)
  in
  let key = device.Device.config.Device.key in
  let service = Incremental.start device ~on_ready:(fun () -> ()) () in
  Engine.run eng;
  let built_at = Engine.now eng in
  (* dirty 3 benign blocks and implant 1 payload a bit later *)
  ignore
    (Engine.schedule_after eng ~delay:(Timebase.s 1) (fun _ ->
         List.iter
           (fun block ->
             match
               Memory.write device.Device.memory ~time:(Engine.now eng) ~block
                 ~offset:0 (Bytes.of_string "sensor sample")
             with
             | Ok () -> ()
             | Error _ -> ())
           [ 10; 20; 30 ]));
  Engine.run eng;
  let report = ref None in
  Incremental.attest service
    ~nonce:(Prng.bytes (Engine.prng eng) 16)
    ~on_complete:(fun r -> report := Some r);
  Engine.run eng;
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "tree build (full measurement price): %s\n"
       (Timebase.to_string built_at));
  (match !report with
  | None -> Buffer.add_string buf "incremental round did not complete\n"
  | Some r ->
    Buffer.add_string buf
      (Printf.sprintf
         "incremental round: %d dirty blocks in %s; verdict %s (any deviation \
from the provisioned image flags, data regions included)\n"
         r.Incremental.dirty_blocks
         (Timebase.to_string (Timebase.sub r.Incremental.t_end r.Incremental.t_start))
         (Verifier.verdict_to_string
            (Incremental.verify ~key ~hash:Ra_crypto.Algo.SHA_256 ~expected_root r))));
  (* now implant a payload and attest again *)
  let rng = Prng.split (Engine.prng eng) in
  ignore
    (Engine.schedule_after eng ~delay:(Timebase.s 1) (fun _ ->
         ignore
           (Ra_malware.Malware.install device ~rng ~block:40 ~priority:8
              Ra_malware.Malware.Static)));
  Engine.run eng;
  let report2 = ref None in
  Incremental.attest service
    ~nonce:(Prng.bytes (Engine.prng eng) 16)
    ~on_complete:(fun r -> report2 := Some r);
  Engine.run eng;
  (match !report2 with
  | None -> Buffer.add_string buf "second round did not complete\n"
  | Some r ->
    Buffer.add_string buf
      (Printf.sprintf "after infection: %d dirty block(s), verdict: %s\n"
         r.Incremental.dirty_blocks
         (Verifier.verdict_to_string
            (Incremental.verify ~key ~hash:Ra_crypto.Algo.SHA_256 ~expected_root r))));
  Buffer.contents buf

let render ?seed () =
  "Incremental attestation (Merkle tree) — extension\n"
  ^ churn_table ()
  ^ "\n"
  ^ live_validation ?seed ()
