type profile = {
  hard_deadline_ms : int option;
  writes_during_attestation : bool;
  unattended : bool;
  has_mpu : bool;
  has_shadow_memory : bool;
  has_secure_clock : bool;
  transient_threat : bool;
}

let default_profile =
  {
    hard_deadline_ms = Some 1000;
    writes_during_attestation = true;
    unattended = false;
    has_mpu = true;
    has_shadow_memory = false;
    has_secure_clock = false;
    transient_threat = true;
  }

type recommendation = { scheme : string; score : int; rationale : string list }

(* Each rule adjusts the score and leaves a line of reasoning. The numbers
   reference the measured experiments (fire-alarm, Table 1, hybrid matrix). *)
let assess profile scheme =
  let score = ref 10 in
  let notes = ref [] in
  let note delta line =
    score := !score + delta;
    notes := Printf.sprintf "%+d %s" delta line :: !notes
  in
  (match scheme with
  | "SMART" ->
    (match profile.hard_deadline_ms with
    | Some d when d < 10_000 ->
      note (-10)
        (Printf.sprintf
           "atomic MP blocks the app for the full measurement (~9.7 s/GiB) > %d ms deadline"
           d)
    | Some _ | None -> note 2 "no tight deadline: atomicity is free consistency");
    note 2 "detects both self-relocating and transient malware (Table 1)"
  | "No-Lock" ->
    note (-8) "misses both the half-split rover and the evasive eraser (measured 0.00)";
    note 3 "never blocks the app (2 ms latency throughout)"
  | "All-Lock" ->
    if not profile.has_mpu then note (-20) "needs a lockable MPU/MMU";
    note 2 "detects both adversaries; consistent over [ts, te]";
    if profile.writes_during_attestation then
      note (-6) "app writes stall for most of the window (45.8 s cumulative measured)";
    (match profile.hard_deadline_ms with
    | Some d when d < 10_000 ->
      note (-4) "stalled actuation writes miss deadlines during the measurement"
    | Some _ | None -> ())
  | "Dec-Lock" ->
    if not profile.has_mpu then note (-20) "needs a lockable MPU/MMU";
    note 2 "detects both adversaries; consistent at ts";
    if profile.writes_during_attestation then
      note (-3)
        "write stall depends on measuring hot data first (0 s vs 45.8 s measured)"
  | "Inc-Lock" ->
    if not profile.has_mpu then note (-20) "needs a lockable MPU/MMU";
    note 1 "consistent at te; catches self-relocating malware";
    if profile.transient_threat then
      note (-6) "the evasive eraser escapes (measured 0.00 transient detection)";
    if profile.writes_during_attestation then
      note 1 "small stall when hot data is measured last (82 ms measured)"
  | "Cpy-Lock" ->
    if not profile.has_mpu then note (-20) "needs a lockable MPU/MMU";
    if not profile.has_shadow_memory then
      note (-12) "needs shadow memory for diverted writes"
    else begin
      note 4 "detects both adversaries with zero write stall (measured)";
      note 2 "consistent over the whole frozen window"
    end
  | "SMARM" ->
    note 2 "no locking hardware needed; app latency unaffected (2 ms)";
    note (-2) "needs ~14 rounds for 1e-6 escape: high measurement overhead";
    if profile.transient_threat then
      note (-5) "transient malware escapes between rounds (measured 0.00)"
  | "ERASMUS" ->
    if not profile.has_secure_clock then
      note (-12) "needs a secure clock for the self-measurement schedule"
    else begin
      note 3 "catches infections that leave before any request (unattended column)";
      if profile.unattended then note 5 "the only option measured to work unattended"
    end;
    (match profile.hard_deadline_ms with
    | Some d when d < 10_000 ->
      note (-3) "each self-measurement is atomic unless made context-aware"
    | Some _ | None -> ())
  | other -> note (-100) ("unknown scheme " ^ other));
  { scheme; score = !score; rationale = List.rev !notes }

let candidates =
  [ "SMART"; "No-Lock"; "All-Lock"; "Dec-Lock"; "Inc-Lock"; "Cpy-Lock"; "SMARM"; "ERASMUS" ]

let recommend profile =
  List.sort
    (fun a b -> Int.compare b.score a.score)
    (List.map (assess profile) candidates)

let render profile =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Scheme advisor — Table 1 as a decision procedure\n";
  Buffer.add_string buf
    (Printf.sprintf
       "profile: deadline=%s writes-during-MP=%b unattended=%b mpu=%b shadows=%b \
        secure-clock=%b transient-threat=%b\n\n"
       (match profile.hard_deadline_ms with
       | Some d -> Printf.sprintf "%d ms" d
       | None -> "none")
       profile.writes_during_attestation profile.unattended profile.has_mpu
       profile.has_shadow_memory profile.has_secure_clock profile.transient_threat);
  List.iter
    (fun r ->
      Buffer.add_string buf (Printf.sprintf "%-10s score %+d\n" r.scheme r.score);
      List.iter (fun line -> Buffer.add_string buf ("    " ^ line ^ "\n")) r.rationale)
    (recommend profile);
  Buffer.contents buf
