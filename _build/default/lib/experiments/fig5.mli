(** Experiment E6 — Figure 5: Quality of Attestation with ERASMUS
    self-measurements. A short-dwell transient infection slips between two
    measurements (Infection 1, undetected); a longer one spans a measurement
    (Infection 2, detected at the next collection). Plus a detection-
    probability sweep over dwell time, Monte Carlo against the analytic
    model. *)

open Ra_sim

type story = {
  t_m : Timebase.t;
  t_c : Timebase.t;
  infection1 : Timebase.t * Timebase.t;
  infection2 : Timebase.t * Timebase.t;
  infection1_detected : bool;
  infection2_detected : bool;
  measurements : Timebase.t list;  (** measurement start instants *)
  collections : Timebase.t list;
  markers : (string * Timebase.t) list;  (** for the timeline rendering *)
}

val run_story : ?seed:int -> unit -> story
(** T_M = 10 s, T_C = 35 s, Infection 1 dwell [13 s, 16 s] (between
    measurements), Infection 2 dwell [47 s, 62 s] (spanning one). *)

val render_story : ?seed:int -> unit -> string

val detection_sweep :
  ?seed:int -> ?trials:int -> t_m:Timebase.t -> dwells:Timebase.t list -> unit -> string
(** Measured detection rate vs dwell time (uniform random phase), against
    the analytic [min(1, (dwell + mp)/T_M)] of {!Ra_core.Qoa}. *)

val freshness_table : unit -> string
(** Worst-case detection delay for on-demand vs self-measurement at several
    (T_M, T_C) points — the decoupling argument of Section 3.3. *)
