open Ra_sim
open Ra_device
open Ra_core

type result = {
  scheme : string;
  mp_duration : Timebase.t;
  alarm_latency : Timebase.t option;
  max_app_latency_s : float;
  deadline_misses : int;
  app_blocked_ns : Timebase.t;
}

let schemes =
  [
    Scheme.smart;
    Scheme.no_lock;
    Scheme.all_lock;
    Scheme.dec_lock;
    Scheme.inc_lock;
    Scheme.cpy_lock;
    Scheme.smarm;
  ]

let blocks = 64
let data_blocks = [ 60; 61; 62; 63 ]

let run_scheme ?(seed = 3) ?(attested_bytes = 1024 * 1024 * 1024)
    ?(fire_offset = Timebase.s 2) scheme =
  let device =
    Device.create
      {
        Device.default_config with
        Device.seed = seed;
        blocks;
        block_size = 256;
        modeled_block_bytes = attested_bytes / blocks;
        data_blocks;
      }
  in
  let eng = device.Device.engine in
  let app_config =
    {
      App.default_config with
      App.data_blocks;
      write_bytes = 32;
      first_activation = Timebase.ms 100;
    }
  in
  let app = App.start eng device.Device.cpu device.Device.memory app_config in
  let mp_start = Timebase.ms 1500 in
  let report = ref None in
  ignore
    (Engine.schedule eng ~at:mp_start (fun _ ->
         App.declare_fire app ~at:(Timebase.add (Engine.now eng) fire_offset);
         Mp.run device
           { Mp.default_config with Mp.scheme }
           ~nonce:(Prng.bytes (Engine.prng eng) 16)
           ~on_complete:(fun r -> report := Some r)
           ()));
  (* Run long enough for the slowest scheme (SMART over 1 GiB ~ 9.7 s) plus
     margin, then stop the app and drain. *)
  Engine.run ~until:(Timebase.s 40) eng;
  App.stop app;
  Engine.run ~until:(Timebase.s 45) eng;
  match !report with
  | None -> failwith "Fire_alarm.run_scheme: measurement did not finish"
  | Some r ->
    {
      scheme = scheme.Scheme.name;
      mp_duration = Timebase.sub r.Report.t_end r.Report.t_start;
      alarm_latency = App.alarm_latency app;
      max_app_latency_s =
        (let stats = App.latencies app in
         if Stats.count stats = 0 then 0. else Stats.max_value stats);
      deadline_misses = App.deadline_misses app;
      app_blocked_ns = App.blocked_ns app;
    }

let render ?seed () =
  let rows =
    List.map
      (fun scheme ->
        let r = run_scheme ?seed scheme in
        [
          r.scheme;
          Timebase.to_string r.mp_duration;
          (match r.alarm_latency with
          | Some l -> Timebase.to_string l
          | None -> "never");
          Printf.sprintf "%.3f s" r.max_app_latency_s;
          string_of_int r.deadline_misses;
          Timebase.to_string r.app_blocked_ns;
        ])
      schemes
  in
  "E7 — Section 2.5 fire alarm during a 1 GiB measurement\n"
  ^ Tablefmt.render
      ~header:
        [
          "scheme";
          "MP duration";
          "alarm latency";
          "max app latency";
          "deadline misses";
          "app write stall";
        ]
      rows
