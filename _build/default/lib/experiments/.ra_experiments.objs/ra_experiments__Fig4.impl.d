lib/experiments/fig4.ml: Bytes Consistency Cpu Device Engine List Memory Mp Printf Prng Ra_core Ra_device Ra_sim Report Scheme String Tablefmt Timebase Timeline
