lib/experiments/fig2.mli: Ra_device
