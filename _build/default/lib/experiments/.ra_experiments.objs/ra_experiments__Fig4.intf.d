lib/experiments/fig4.mli: Ra_core Ra_sim Scheme Timebase
