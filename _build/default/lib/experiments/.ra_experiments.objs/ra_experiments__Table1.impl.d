lib/experiments/table1.ml: App Device Engine Erasmus Fig4 Fire_alarm List Mp Printf Prng Ra_core Ra_device Ra_malware Ra_sim Runs Scheme Stats Tablefmt Timebase Verifier
