lib/experiments/smarm_sweep.ml: Array List Printf Prng Ra_core Ra_malware Ra_sim Runs Scheme Smarm Tablefmt
