lib/experiments/fig5.mli: Ra_sim Timebase
