lib/experiments/fig5.ml: Cost_model Device Engine Erasmus List Printf Prng Qoa Ra_core Ra_crypto Ra_device Ra_malware Ra_sim Report Tablefmt Timebase Timeline Verifier
