lib/experiments/smarm_sweep.mli:
