lib/experiments/dos.ml: App Cpu Device Engine List Mp Printf Prng Ra_core Ra_device Ra_sim Scheme Stats Tablefmt Timebase
