lib/experiments/incremental_eval.ml: Buffer Bytes Cost_model Device Engine Incremental List Memory Printf Prng Ra_core Ra_crypto Ra_device Ra_malware Ra_sim Tablefmt Timebase Verifier
