lib/experiments/tablefmt.mli:
