lib/experiments/advisor.mli:
