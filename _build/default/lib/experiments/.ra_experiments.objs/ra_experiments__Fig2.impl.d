lib/experiments/fig2.ml: Cost_model Float List Printf Ra_crypto Ra_device Ra_sim Tablefmt
