lib/experiments/fire_alarm.ml: App Device Engine List Mp Printf Prng Ra_core Ra_device Ra_sim Report Scheme Stats Tablefmt Timebase
