lib/experiments/latency_profile.mli: Ra_core
