lib/experiments/ablations.mli:
