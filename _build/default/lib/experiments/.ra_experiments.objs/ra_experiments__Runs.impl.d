lib/experiments/runs.ml: App Cost_model Cpu Device Engine List Mp Option Prng Ra_core Ra_crypto Ra_device Ra_malware Ra_sim Report Scheme Stats Timebase Verifier
