lib/experiments/advisor.ml: Buffer Int List Printf
