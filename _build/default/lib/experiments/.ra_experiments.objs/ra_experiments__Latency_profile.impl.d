lib/experiments/latency_profile.ml: App Array Buffer Device Engine List Memory Mp Printf Prng Ra_core Ra_device Ra_sim Scheme Stats Tablefmt Timebase
