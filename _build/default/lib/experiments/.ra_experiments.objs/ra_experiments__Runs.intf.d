lib/experiments/runs.mli: Ra_core Ra_crypto Ra_device Ra_malware Ra_sim Report Scheme Stats Timebase Verifier
