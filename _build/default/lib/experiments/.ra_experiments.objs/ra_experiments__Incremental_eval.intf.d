lib/experiments/incremental_eval.mli:
