lib/experiments/dos.mli: Ra_sim Timebase
