lib/experiments/ablations.ml: App Cost_model Device Engine List Mp Printf Prng Ra_core Ra_crypto Ra_device Ra_malware Ra_sim Runs Scheme Smarm Smarm_sweep Stats Tablefmt Timebase
