lib/experiments/fire_alarm.mli: Ra_core Ra_sim Scheme Timebase
