lib/experiments/tablefmt.ml: Array Buffer Hashtbl List Option Printf String
