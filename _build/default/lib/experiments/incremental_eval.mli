(** Incremental (Merkle-tree) attestation vs full measurement: MP cost as a
    function of churn — the extension that shrinks the Section 2.5
    availability window from memory-sized to churn-sized. *)

val churn_table : ?blocks:int -> ?attested_bytes:int -> unit -> string
(** Model cost of one incremental round vs the full measurement across
    dirty-block counts, with speedups. Defaults: 1024 blocks, 1 GiB. *)

val live_validation : ?seed:int -> unit -> string
(** Full-stack check: run the service on a device, dirty a few blocks, and
    compare the measured round duration against the model; also confirm
    clean/tampered verdicts. *)

val render : ?seed:int -> unit -> string
