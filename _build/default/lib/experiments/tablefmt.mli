(** Fixed-width text tables for the experiment harnesses. *)

val render : header:string list -> string list list -> string
(** Column widths fit the widest cell; header separated by a rule. Rows
    shorter than the header are right-padded with empty cells. *)

val render_series : x_label:string -> series:(string * (string * string) list) list -> string
(** Render several named (x, y) series sharing the x column:
    one row per x value, one column per series. Missing points are blank. *)
