(** Real-time view of the schemes: the critical application's latency
    *distribution* (not just the worst case) while a 1 GiB measurement runs,
    and a per-block lock-occupancy Gantt that makes the locking schemes'
    sliding windows visible. *)

val latency_table : ?seed:int -> unit -> string
(** p50 / p95 / p99 / max activation-to-completion latency and deadline
    misses per scheme, over ~35 s of 1 s activations with one measurement
    in the middle. *)

val lock_gantt : ?seed:int -> Ra_core.Scheme.t -> string
(** One strip per block ([#] locked, [.] free) sampled over the measurement
    window — All-Lock is a solid bar, Dec-Lock a receding staircase,
    Inc-Lock a growing one. 16 blocks for readability. *)

val render : ?seed:int -> unit -> string
(** The table plus Gantts for All-, Dec- and Inc-Lock. *)
