(** Operational summary of the paper's tradeoff analysis: given a device
    and deployment profile, rank the schemes. This is Table 1 turned into a
    decision procedure — every rule cites the measured behaviour behind it. *)

type profile = {
  hard_deadline_ms : int option;
      (** tightest reaction deadline of the critical task, if any *)
  writes_during_attestation : bool;  (** does the app write attested memory? *)
  unattended : bool;  (** long gaps between verifier contacts *)
  has_mpu : bool;  (** can lock/unlock memory regions *)
  has_shadow_memory : bool;  (** headroom for copy-on-write shadows *)
  has_secure_clock : bool;  (** can self-schedule measurements *)
  transient_threat : bool;  (** is in-and-out malware part of the threat model *)
}

val default_profile : profile
(** Interactive-verifier, MPU present, no shadows, no secure clock,
    1 s deadline, writes during attestation, transient threat considered. *)

type recommendation = {
  scheme : string;
  score : int;  (** higher is better; <= 0 means unsuitable *)
  rationale : string list;  (** one line per rule that fired *)
}

val recommend : profile -> recommendation list
(** All candidates, best first. Deterministic. *)

val render : profile -> string
