(** RSA hash-and-sign (EMSA-PKCS1-v1_5, RFC 8017) with fixed embedded keys.

    Key generation is out of scope (the paper only measures sign/verify
    cost); the three key sizes of Fig. 2 ship as reproducible fixtures. *)

open Ra_bignum

type public_key = { n : Nat.t; e : Nat.t; bits : int }

type private_key = { pub : public_key; d : Nat.t }

val test_key_1024 : private_key
val test_key_2048 : private_key
val test_key_4096 : private_key

val test_key : bits:int -> private_key
(** One of the three fixtures. Raises [Invalid_argument] otherwise. *)

type hash = SHA_256 | SHA_512
(** Hashes with a standard DigestInfo encoding. *)

val sign : hash:hash -> private_key -> Bytes.t -> Bytes.t
(** Signature of [bits/8] bytes. Raises [Invalid_argument] if the modulus is
    too small for the chosen hash (cannot happen with the fixtures). *)

val verify : hash:hash -> public_key -> msg:Bytes.t -> signature:Bytes.t -> bool

val raw_private : private_key -> Nat.t -> Nat.t
(** Textbook RSA private operation [m^d mod n], exposed for tests. *)

val raw_public : public_key -> Nat.t -> Nat.t
(** Textbook RSA public operation [m^e mod n], exposed for tests. *)
