lib/pk/rsa.mli: Bytes Nat Ra_bignum
