lib/pk/ec.ml: List Nat Ra_bignum String
