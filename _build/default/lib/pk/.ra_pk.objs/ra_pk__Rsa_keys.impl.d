lib/pk/rsa_keys.ml:
