lib/pk/ecdsa.mli: Bytes Ec Nat Ra_bignum Ra_crypto Ra_sim
