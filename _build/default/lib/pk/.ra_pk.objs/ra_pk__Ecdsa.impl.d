lib/pk/ecdsa.ml: Buffer Bytes Ec Nat Ra_bignum Ra_crypto
