lib/pk/ec.mli: Nat Ra_bignum
