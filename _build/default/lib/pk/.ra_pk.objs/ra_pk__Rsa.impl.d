lib/pk/rsa.ml: Bytes Nat Ra_bignum Ra_crypto Rsa_keys
