(** Elliptic-curve arithmetic over prime fields, from scratch.

    Short Weierstrass curves [y^2 = x^3 + ax + b (mod p)], computed in
    Jacobian coordinates to avoid a field inversion per point addition.
    Provides the three NIST/SECG curves of the paper's Fig. 2:
    secp160r1 (ECDSA-160), secp224r1 (ECDSA-224), secp256r1 (ECDSA-256). *)

open Ra_bignum

type curve = {
  name : string;
  p : Nat.t;  (** field prime *)
  a : Nat.t;
  b : Nat.t;
  gx : Nat.t;
  gy : Nat.t;
  n : Nat.t;  (** order of the base point *)
}

type point = Infinity | Affine of Nat.t * Nat.t

val secp160r1 : curve
val secp224r1 : curve
val secp256r1 : curve

val all_curves : curve list

val curve_of_name : string -> curve option

val generator : curve -> point

val is_on_curve : curve -> point -> bool
(** [Infinity] is on every curve. *)

val negate : curve -> point -> point

val add : curve -> point -> point -> point

val double : curve -> point -> point

val scalar_mul : curve -> Nat.t -> point -> point
(** Double-and-add. The scalar is reduced modulo the group order [n], so the
    point must have order [n] (the generator and honest public keys do).
    [scalar_mul c Nat.zero p = Infinity]. *)
