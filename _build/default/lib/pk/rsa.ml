open Ra_bignum

type public_key = { n : Nat.t; e : Nat.t; bits : int }

type private_key = { pub : public_key; d : Nat.t }

let make_key ~n_hex ~d_hex ~bits =
  let n = Nat.of_hex n_hex in
  { pub = { n; e = Nat.of_int Rsa_keys.e; bits }; d = Nat.of_hex d_hex }

let test_key_1024 = make_key ~n_hex:Rsa_keys.n1024 ~d_hex:Rsa_keys.d1024 ~bits:1024
let test_key_2048 = make_key ~n_hex:Rsa_keys.n2048 ~d_hex:Rsa_keys.d2048 ~bits:2048
let test_key_4096 = make_key ~n_hex:Rsa_keys.n4096 ~d_hex:Rsa_keys.d4096 ~bits:4096

let test_key ~bits =
  match bits with
  | 1024 -> test_key_1024
  | 2048 -> test_key_2048
  | 4096 -> test_key_4096
  | _ -> invalid_arg "Rsa.test_key: no fixture for this size"

type hash = SHA_256 | SHA_512

(* DER DigestInfo prefixes from RFC 8017 section 9.2. *)
let digest_info = function
  | SHA_256 -> Ra_crypto.Bytesutil.of_hex "3031300d060960864801650304020105000420"
  | SHA_512 -> Ra_crypto.Bytesutil.of_hex "3051300d060960864801650304020305000440"

let digest = function
  | SHA_256 -> Ra_crypto.Sha256.digest
  | SHA_512 -> Ra_crypto.Sha512.digest

(* EMSA-PKCS1-v1_5: 0x00 0x01 FF..FF 0x00 DigestInfo Hash(msg). *)
let encode ~hash ~em_len msg =
  let info = digest_info hash in
  let h = digest hash msg in
  let t_len = Bytes.length info + Bytes.length h in
  if em_len < t_len + 11 then invalid_arg "Rsa: modulus too small for hash";
  let em = Bytes.make em_len '\xff' in
  Bytes.set em 0 '\x00';
  Bytes.set em 1 '\x01';
  Bytes.set em (em_len - t_len - 1) '\x00';
  Bytes.blit info 0 em (em_len - t_len) (Bytes.length info);
  Bytes.blit h 0 em (em_len - Bytes.length h) (Bytes.length h);
  em

let raw_private key m = Nat.mod_pow_fast ~base:m ~exponent:key.d ~modulus:key.pub.n

let raw_public key m = Nat.mod_pow_fast ~base:m ~exponent:key.e ~modulus:key.n

let sign ~hash key msg =
  let em_len = key.pub.bits / 8 in
  let em = encode ~hash ~em_len msg in
  let m = Nat.of_bytes_be em in
  Nat.to_bytes_be ~size:em_len (raw_private key m)

let verify ~hash key ~msg ~signature =
  let em_len = key.bits / 8 in
  Bytes.length signature = em_len
  &&
  let s = Nat.of_bytes_be signature in
  Nat.compare s key.n < 0
  &&
  let em = Nat.to_bytes_be ~size:em_len (raw_public key s) in
  let expected = encode ~hash ~em_len msg in
  Ra_crypto.Bytesutil.constant_time_equal em expected
