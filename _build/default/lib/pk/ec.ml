open Ra_bignum

type curve = {
  name : string;
  p : Nat.t;
  a : Nat.t;
  b : Nat.t;
  gx : Nat.t;
  gy : Nat.t;
  n : Nat.t;
}

type point = Infinity | Affine of Nat.t * Nat.t

let h = Nat.of_hex

let secp160r1 =
  {
    name = "secp160r1";
    p = h "ffffffffffffffffffffffffffffffff7fffffff";
    a = h "ffffffffffffffffffffffffffffffff7ffffffc";
    b = h "1c97befc54bd7a8b65acf89f81d4d4adc565fa45";
    gx = h "4a96b5688ef573284664698968c38bb913cbfc82";
    gy = h "23a628553168947d59dcc912042351377ac5fb32";
    n = h "0100000000000000000001f4c8f927aed3ca752257";
  }

let secp224r1 =
  {
    name = "secp224r1";
    p = h "ffffffffffffffffffffffffffffffff000000000000000000000001";
    a = h "fffffffffffffffffffffffffffffffefffffffffffffffffffffffe";
    b = h "b4050a850c04b3abf54132565044b0b7d7bfd8ba270b39432355ffb4";
    gx = h "b70e0cbd6bb4bf7f321390b94a03c1d356c21122343280d6115c1d21";
    gy = h "bd376388b5f723fb4c22dfe6cd4375a05a07476444d5819985007e34";
    n = h "ffffffffffffffffffffffffffff16a2e0b8f03e13dd29455c5c2a3d";
  }

let secp256r1 =
  {
    name = "secp256r1";
    p = h "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff";
    a = h "ffffffff00000001000000000000000000000000fffffffffffffffffffffffc";
    b = h "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b";
    gx = h "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296";
    gy = h "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5";
    n = h "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551";
  }

let all_curves = [ secp160r1; secp224r1; secp256r1 ]

let curve_of_name name =
  List.find_opt (fun c -> String.equal c.name (String.lowercase_ascii name)) all_curves

let generator c = Affine (c.gx, c.gy)

let is_on_curve c = function
  | Infinity -> true
  | Affine (x, y) ->
    let p = c.p in
    let y2 = Nat.mod_mul y y ~modulus:p in
    let x3 = Nat.mod_mul (Nat.mod_mul x x ~modulus:p) x ~modulus:p in
    let rhs =
      Nat.mod_add (Nat.mod_add x3 (Nat.mod_mul c.a x ~modulus:p) ~modulus:p) c.b
        ~modulus:p
    in
    Nat.equal y2 rhs

let negate c = function
  | Infinity -> Infinity
  | Affine (x, y) ->
    if Nat.is_zero y then Affine (x, y) else Affine (x, Nat.sub c.p y)

(* Jacobian coordinates: (X, Y, Z) represents affine (X/Z^2, Y/Z^3);
   Z = 0 is the point at infinity. *)
type jac = { jx : Nat.t; jy : Nat.t; jz : Nat.t }

let jac_infinity = { jx = Nat.one; jy = Nat.one; jz = Nat.zero }

let jac_of_point = function
  | Infinity -> jac_infinity
  | Affine (x, y) -> { jx = x; jy = y; jz = Nat.one }

let point_of_jac c j =
  if Nat.is_zero j.jz then Infinity
  else begin
    let p = c.p in
    let z_inv =
      match Nat.mod_inverse j.jz ~modulus:p with
      | Some v -> v
      | None -> assert false (* p is prime and jz <> 0 *)
    in
    let z_inv2 = Nat.mod_mul z_inv z_inv ~modulus:p in
    let z_inv3 = Nat.mod_mul z_inv2 z_inv ~modulus:p in
    Affine (Nat.mod_mul j.jx z_inv2 ~modulus:p, Nat.mod_mul j.jy z_inv3 ~modulus:p)
  end

let jac_double c q =
  if Nat.is_zero q.jz || Nat.is_zero q.jy then jac_infinity
  else begin
    let p = c.p in
    let ( * ) x y = Nat.mod_mul x y ~modulus:p in
    let ( + ) x y = Nat.mod_add x y ~modulus:p in
    let ( - ) x y = Nat.mod_sub x y ~modulus:p in
    let xx = q.jx * q.jx in
    let yy = q.jy * q.jy in
    let yyyy = yy * yy in
    let zz = q.jz * q.jz in
    let s = yy * q.jx in
    let s = s + s + s + s in
    let m = xx + xx + xx + (c.a * (zz * zz)) in
    let x' = (m * m) - (s + s) in
    let eight_yyyy = let t = yyyy + yyyy in let t = t + t in t + t in
    let y' = (m * (s - x')) - eight_yyyy in
    let z' = let t = q.jy * q.jz in t + t in
    { jx = x'; jy = y'; jz = z' }
  end

let jac_add c q1 q2 =
  if Nat.is_zero q1.jz then q2
  else if Nat.is_zero q2.jz then q1
  else begin
    let p = c.p in
    let ( * ) x y = Nat.mod_mul x y ~modulus:p in
    let ( + ) x y = Nat.mod_add x y ~modulus:p in
    let ( - ) x y = Nat.mod_sub x y ~modulus:p in
    let z1z1 = q1.jz * q1.jz in
    let z2z2 = q2.jz * q2.jz in
    let u1 = q1.jx * z2z2 in
    let u2 = q2.jx * z1z1 in
    let s1 = q1.jy * (q2.jz * z2z2) in
    let s2 = q2.jy * (q1.jz * z1z1) in
    if Nat.equal u1 u2 then
      if Nat.equal s1 s2 then jac_double c q1 else jac_infinity
    else begin
      let hh = u2 - u1 in
      let r = s2 - s1 in
      let hh2 = hh * hh in
      let hh3 = hh2 * hh in
      let v = u1 * hh2 in
      let x3 = (r * r) - hh3 - (v + v) in
      let y3 = (r * (v - x3)) - (s1 * hh3) in
      let z3 = q1.jz * q2.jz * hh in
      { jx = x3; jy = y3; jz = z3 }
    end
  end

let double c pt = point_of_jac c (jac_double c (jac_of_point pt))

let add c pt1 pt2 = point_of_jac c (jac_add c (jac_of_point pt1) (jac_of_point pt2))

let scalar_mul c k pt =
  let k = Nat.rem k c.n in
  if Nat.is_zero k then Infinity
  else begin
    let base = jac_of_point pt in
    let acc = ref jac_infinity in
    for i = Nat.bit_length k - 1 downto 0 do
      acc := jac_double c !acc;
      if Nat.test_bit k i then acc := jac_add c !acc base
    done;
    point_of_jac c !acc
  end
