(** ECDSA signatures (FIPS 186-4) over the curves of {!Ec}. *)

open Ra_bignum

type keypair = {
  curve : Ec.curve;
  d : Nat.t;  (** private scalar, in [\[1, n-1\]] *)
  q : Ec.point;  (** public point [d * G] *)
}

type signature = { r : Nat.t; s : Nat.t }

val generate : Ec.curve -> Ra_sim.Prng.t -> keypair

val keypair_of_scalar : Ec.curve -> Nat.t -> keypair
(** Deterministic keypair from a known scalar (reduced into [\[1, n-1\]]);
    used for reproducible fixtures. Raises [Invalid_argument] if the scalar
    reduces to zero. *)

val sign :
  hash:Ra_crypto.Algo.hash -> keypair -> Ra_sim.Prng.t -> Bytes.t -> signature
(** Hash-and-sign with a random (rejection-sampled) nonce. *)

val sign_deterministic : hash:Ra_crypto.Algo.hash -> keypair -> Bytes.t -> signature
(** RFC 6979 deterministic nonces (HMAC-SHA-256 DRBG): the right mode for
    embedded provers without an entropy source — same message, same
    signature, and no nonce-reuse catastrophe. *)

val verify :
  hash:Ra_crypto.Algo.hash ->
  curve:Ec.curve ->
  public:Ec.point ->
  Bytes.t ->
  signature ->
  bool
