open Ra_bignum

type keypair = { curve : Ec.curve; d : Nat.t; q : Ec.point }

type signature = { r : Nat.t; s : Nat.t }

let keypair_of_scalar curve scalar =
  let d = Nat.rem scalar curve.Ec.n in
  if Nat.is_zero d then invalid_arg "Ecdsa.keypair_of_scalar: zero scalar";
  { curve; d; q = Ec.scalar_mul curve d (Ec.generator curve) }

let generate curve rng =
  let n_minus_1 = Nat.sub curve.Ec.n Nat.one in
  let d = Nat.add (Nat.random_below rng ~bound:n_minus_1) Nat.one in
  { curve; d; q = Ec.scalar_mul curve d (Ec.generator curve) }

(* FIPS 186-4: z is the leftmost [bitlen n] bits of the digest. *)
let truncated_digest ~hash curve msg =
  let digest = Ra_crypto.Algo.digest hash msg in
  let z = Nat.of_bytes_be digest in
  let digest_bits = 8 * Bytes.length digest in
  let n_bits = Nat.bit_length curve.Ec.n in
  if digest_bits > n_bits then Nat.shift_right z (digest_bits - n_bits) else z

let sign ~hash keypair rng msg =
  let curve = keypair.curve in
  let n = curve.Ec.n in
  let z = truncated_digest ~hash curve msg in
  let n_minus_1 = Nat.sub n Nat.one in
  let rec attempt () =
    let k = Nat.add (Nat.random_below rng ~bound:n_minus_1) Nat.one in
    match Ec.scalar_mul curve k (Ec.generator curve) with
    | Ec.Infinity -> attempt ()
    | Ec.Affine (x1, _) ->
      let r = Nat.rem x1 n in
      if Nat.is_zero r then attempt ()
      else begin
        match Nat.mod_inverse k ~modulus:n with
        | None -> attempt ()
        | Some k_inv ->
          let rd = Nat.mod_mul r keypair.d ~modulus:n in
          let s = Nat.mod_mul k_inv (Nat.mod_add (Nat.rem z n) rd ~modulus:n) ~modulus:n in
          if Nat.is_zero s then attempt () else { r; s }
      end
  in
  attempt ()

(* RFC 6979 section 3.2: derive the nonce from the key and message digest
   through an HMAC-SHA-256 DRBG, so signing needs no randomness at all. *)
let rfc6979_nonce ~curve ~d ~digest =
  let n = curve.Ec.n in
  let qlen = Nat.bit_length n in
  let rlen = (qlen + 7) / 8 in
  let bits2int b =
    let z = Nat.of_bytes_be b in
    let blen = 8 * Bytes.length b in
    if blen > qlen then Nat.shift_right z (blen - qlen) else z
  in
  let int2octets z = Nat.to_bytes_be ~size:rlen z in
  let bits2octets b =
    let z1 = bits2int b in
    let z2 = if Nat.compare z1 n >= 0 then Nat.sub z1 n else z1 in
    int2octets z2
  in
  let hmac ~key msg = Ra_crypto.Hmac.Sha256.mac ~key msg in
  let x = int2octets d in
  let h1 = bits2octets digest in
  let v = ref (Bytes.make 32 '\x01') in
  let k = ref (Bytes.make 32 '\x00') in
  let concat parts = Bytes.concat Bytes.empty parts in
  k := hmac ~key:!k (concat [ !v; Bytes.make 1 '\x00'; x; h1 ]);
  v := hmac ~key:!k !v;
  k := hmac ~key:!k (concat [ !v; Bytes.make 1 '\x01'; x; h1 ]);
  v := hmac ~key:!k !v;
  let rec generate () =
    let t = Buffer.create rlen in
    while Buffer.length t < rlen do
      v := hmac ~key:!k !v;
      Buffer.add_bytes t !v
    done;
    let candidate = bits2int (Bytes.sub (Buffer.to_bytes t) 0 rlen) in
    if (not (Nat.is_zero candidate)) && Nat.compare candidate n < 0 then candidate
    else begin
      k := hmac ~key:!k (concat [ !v; Bytes.make 1 '\x00' ]);
      v := hmac ~key:!k !v;
      generate ()
    end
  in
  generate ()

let sign_deterministic ~hash keypair msg =
  let curve = keypair.curve in
  let n = curve.Ec.n in
  let digest = Ra_crypto.Algo.digest hash msg in
  let z = truncated_digest ~hash curve msg in
  let rec attempt extra =
    (* the RFC loop re-derives on the (practically unreachable) r = 0 or
       s = 0 cases by continuing the DRBG; folding a counter into the
       digest is an equivalent deterministic restart *)
    let digest =
      if extra = 0 then digest
      else Ra_crypto.Algo.digest hash (Bytes.cat digest (Bytes.make extra '\xCC'))
    in
    let k = rfc6979_nonce ~curve ~d:keypair.d ~digest in
    match Ec.scalar_mul curve k (Ec.generator curve) with
    | Ec.Infinity -> attempt (extra + 1)
    | Ec.Affine (x1, _) ->
      let r = Nat.rem x1 n in
      if Nat.is_zero r then attempt (extra + 1)
      else begin
        match Nat.mod_inverse k ~modulus:n with
        | None -> attempt (extra + 1)
        | Some k_inv ->
          let rd = Nat.mod_mul r keypair.d ~modulus:n in
          let s =
            Nat.mod_mul k_inv (Nat.mod_add (Nat.rem z n) rd ~modulus:n) ~modulus:n
          in
          if Nat.is_zero s then attempt (extra + 1) else { r; s }
      end
  in
  attempt 0

let in_range v ~n = (not (Nat.is_zero v)) && Nat.compare v n < 0

let verify ~hash ~curve ~public msg { r; s } =
  let n = curve.Ec.n in
  in_range r ~n && in_range s ~n && Ec.is_on_curve curve public
  && public <> Ec.Infinity
  &&
  let z = truncated_digest ~hash curve msg in
  match Nat.mod_inverse s ~modulus:n with
  | None -> false
  | Some w ->
    let u1 = Nat.mod_mul (Nat.rem z n) w ~modulus:n in
    let u2 = Nat.mod_mul r w ~modulus:n in
    let point =
      Ec.add curve
        (Ec.scalar_mul curve u1 (Ec.generator curve))
        (Ec.scalar_mul curve u2 public)
    in
    begin
      match point with
      | Ec.Infinity -> false
      | Ec.Affine (x, _) -> Nat.equal (Nat.rem x n) r
    end
