open Ra_sim

type config = {
  seed : int;
  nodes : int;
  period : Timebase.t;
  threshold : Timebase.t;
  loss : float;
  horizon : Timebase.t;
}

let default_config =
  {
    seed = 1;
    nodes = 16;
    period = Timebase.s 1;
    threshold = Timebase.ms 2500;
    loss = 0.;
    horizon = Timebase.s 60;
  }

type capture = { node : int; from_ : Timebase.t; until_ : Timebase.t }

type result = {
  alarmed : int list;
  true_alarms : int;
  false_alarms : int;
  missed : int;
  heartbeats : int;
}

let run config ~captures =
  if config.nodes < 1 then invalid_arg "Heartbeat.run: empty swarm";
  List.iter
    (fun c ->
      if c.node < 0 || c.node >= config.nodes then
        invalid_arg "Heartbeat.run: capture of unknown node";
      if c.until_ < c.from_ then invalid_arg "Heartbeat.run: bad capture window")
    captures;
  let eng = Engine.create ~seed:config.seed () in
  let rng = Prng.split (Engine.prng eng) in
  let last_seen = Array.make config.nodes Timebase.zero in
  let max_gap = Array.make config.nodes Timebase.zero in
  let delivered = ref 0 in
  let silenced node time =
    List.exists (fun c -> c.node = node && time >= c.from_ && time <= c.until_) captures
  in
  (* Each node beats with a fixed per-node phase so arrivals interleave. *)
  let rec beat node at =
    if at <= config.horizon then
      ignore
        (Engine.schedule eng ~at (fun _ ->
             if (not (silenced node at)) && not (Prng.bernoulli rng ~p:config.loss)
             then begin
               incr delivered;
               let gap = Timebase.sub at last_seen.(node) in
               if gap > max_gap.(node) then max_gap.(node) <- gap;
               last_seen.(node) <- at
             end;
             beat node (Timebase.add at config.period)))
  in
  for node = 0 to config.nodes - 1 do
    let phase = Prng.int rng ~bound:(max 1 config.period) in
    last_seen.(node) <- 0;
    beat node phase
  done;
  Engine.run eng;
  (* close the window: silence up to the horizon also counts *)
  for node = 0 to config.nodes - 1 do
    let tail_gap = Timebase.sub config.horizon last_seen.(node) in
    if tail_gap > max_gap.(node) then max_gap.(node) <- tail_gap
  done;
  let alarmed = ref [] in
  for node = config.nodes - 1 downto 0 do
    if max_gap.(node) > config.threshold then alarmed := node :: !alarmed
  done;
  let captured node = List.exists (fun c -> c.node = node) captures in
  let true_alarms = List.length (List.filter captured !alarmed) in
  let false_alarms = List.length !alarmed - true_alarms in
  let missed =
    List.length
      (List.filter
         (fun c -> not (List.mem c.node !alarmed))
         (List.sort_uniq (fun a b -> Int.compare a.node b.node) captures))
  in
  {
    alarmed = !alarmed;
    true_alarms;
    false_alarms;
    missed;
    heartbeats = !delivered;
  }

let threshold_sweep config ~capture_length ~factors =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "Heartbeat threshold sweep (period %s, loss %.0f%%, capture %s)\n"
       (Timebase.to_string config.period)
       (config.loss *. 100.)
       (Timebase.to_string capture_length));
  Buffer.add_string buf "threshold   captured node flagged  false alarms\n";
  Buffer.add_string buf "---------   ---------------------  ------------\n";
  List.iter
    (fun factor ->
      let threshold =
        int_of_float (Float.round (float_of_int config.period *. factor))
      in
      let cfg = { config with threshold } in
      let capture =
        { node = 3; from_ = Timebase.s 20; until_ = Timebase.add (Timebase.s 20) capture_length }
      in
      let r = run cfg ~captures:[ capture ] in
      Buffer.add_string buf
        (Printf.sprintf "%-11s %-22s %d\n"
           (Printf.sprintf "%.1fx" factor)
           (if List.mem 3 r.alarmed then "yes" else "NO")
           r.false_alarms))
    factors;
  Buffer.contents buf
