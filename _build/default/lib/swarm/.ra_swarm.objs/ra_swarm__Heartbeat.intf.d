lib/swarm/heartbeat.mli: Ra_sim Timebase
