lib/swarm/swarm.ml: Array Bytes Cost_model Engine List Printf Prng Ra_crypto Ra_device Ra_sim Timebase
