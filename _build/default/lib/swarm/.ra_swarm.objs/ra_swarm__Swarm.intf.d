lib/swarm/swarm.mli: Ra_device Ra_sim Timebase
