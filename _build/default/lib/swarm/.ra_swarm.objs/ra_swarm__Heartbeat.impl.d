lib/swarm/heartbeat.ml: Array Buffer Engine Float Int List Printf Prng Ra_sim Timebase
