(** DARPA-style absence detection (Section 2.1): physical attacks need the
    victim taken offline (to extract keys or swap firmware), so swarm
    members emit periodic authenticated heartbeats and a monitor flags any
    node silent for longer than a threshold.

    The tension measured here: a tight threshold catches short capture
    windows but lossy links produce false alarms; a loose threshold is
    quiet but leaves room to hide a capture. *)

open Ra_sim

type config = {
  seed : int;
  nodes : int;
  period : Timebase.t;  (** heartbeat period *)
  threshold : Timebase.t;  (** silence longer than this raises an alarm *)
  loss : float;  (** per-heartbeat delivery loss *)
  horizon : Timebase.t;  (** observation window *)
}

val default_config : config
(** 16 nodes, 1 s period, 2.5 s threshold, no loss, 60 s horizon. *)

type capture = {
  node : int;
  from_ : Timebase.t;
  until_ : Timebase.t;  (** node is silent during [\[from_, until_\]] *)
}

type result = {
  alarmed : int list;  (** nodes flagged, ascending *)
  true_alarms : int;  (** flagged nodes that were actually captured *)
  false_alarms : int;  (** flagged but never captured (loss artefacts) *)
  missed : int;  (** captured but never flagged *)
  heartbeats : int;  (** total heartbeats delivered *)
}

val run : config -> captures:capture list -> result
(** Deterministic in [config.seed]. Raises [Invalid_argument] on captures
    referencing unknown nodes. *)

val threshold_sweep :
  config -> capture_length:Timebase.t -> factors:float list -> string
(** For each threshold factor (x period): false-alarm count on lossy links
    vs detection of a capture of the given length — the tuning tradeoff. *)
