(** Collective (swarm) attestation — the Section 2.1 extension.

    A SEDA/LISA-style protocol over a spanning tree of simple devices: the
    verifier challenges the root; the challenge floods down; every node
    measures its own firmware (a real keyed digest over real bytes) and
    reports up; interior nodes verify children's MACs and aggregate counts.
    Links lose messages independently; a lost subtree shows up as
    unresponsive rather than healthy — the property swarm RA needs. *)

open Ra_sim

type config = {
  seed : int;
  nodes : int;
  fanout : int;  (** children per interior node *)
  node_bytes : int;  (** firmware size measured per node (real bytes) *)
  modeled_node_bytes : int;  (** bytes charged to the cost model *)
  link_delay : Timebase.t;
  loss : float;  (** independent per-message loss probability *)
  cost : Ra_device.Cost_model.t;
}

val default_config : config
(** 31 nodes, fanout 2, 4 KiB real / 1 MiB modeled, 5 ms links, no loss. *)

type result = {
  healthy : int;  (** nodes whose self-report verified clean *)
  tampered : int;
  unresponsive : int;  (** nodes whose report never reached the verifier *)
  duration : Timebase.t;  (** challenge to final aggregate *)
  messages : int;  (** total link transmissions *)
}

val run : config -> infected:int list -> result
(** Runs one collective attestation round. [infected] node ids get a
    corrupted firmware image. Node 0 is the root. Deterministic in
    [config.seed]. *)

val depth : config -> int
(** Tree depth, for latency reasoning in tests and docs. *)
