type right = Read | Write | Execute

type capability = { first_block : int; block_span : int; rights : right list }

type pid = string

type t = {
  table : (pid, capability list) Hashtbl.t;
  mutable order : pid list; (* first-grant order, newest first *)
}

let create () = { table = Hashtbl.create 8; order = [] }

let grant t pid capability =
  if capability.block_span < 1 || capability.first_block < 0 then
    invalid_arg "Capability.grant: bad region";
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.table pid) in
  if existing = [] && not (List.mem pid t.order) then t.order <- pid :: t.order;
  Hashtbl.replace t.table pid (existing @ [ capability ])

let revoke_all t pid = Hashtbl.remove t.table pid

let covers capability right ~block =
  block >= capability.first_block
  && block < capability.first_block + capability.block_span
  && List.mem right capability.rights

let allows t pid right ~block =
  match Hashtbl.find_opt t.table pid with
  | None -> false
  | Some capabilities -> List.exists (fun c -> covers c right ~block) capabilities

let regions_of t pid = Option.value ~default:[] (Hashtbl.find_opt t.table pid)

let pids t = List.rev (List.filter (Hashtbl.mem t.table) t.order)
