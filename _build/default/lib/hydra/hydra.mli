(** HYDRA (Section 2.1): SMART's guarantees rebuilt in software on top of a
    verified microkernel's process isolation.

    Three rules carry the architecture, all expressed as capabilities:
    the attestation process alone can read the key; every application
    process can write only its own region; and the attestation process runs
    at the highest priority, which on a single core makes its measurement
    de-facto atomic — reproducing both SMART's security *and* its
    availability problem (the paper: "Similar to SMART, HYDRA requires
    execution of the attestation process to be atomic"). *)

open Ra_sim

type t

type app_region = {
  pid : Capability.pid;
  first_block : int;
  block_span : int;
  priority : int;  (** the process's CPU priority *)
}

val build : Ra_device.Device.t -> apps:app_region list -> t
(** Grants each app read/write/execute over exactly its own region, and the
    internal attestation process ([pid = "hydra-mp"]) read over everything
    plus exclusive key access. App regions must not overlap. The
    attestation priority is one above the highest app priority. *)

val mp_pid : Capability.pid

val device : t -> Ra_device.Device.t

val capabilities : t -> Capability.t

val mp_priority : t -> int

val read_key : t -> Capability.pid -> (Bytes.t, string) result
(** Only the attestation process succeeds; everyone else gets a denial
    message — SMART's exclusive key access, enforced in software. *)

val guarded_write :
  t -> Capability.pid -> block:int -> offset:int -> Bytes.t -> (unit, string) result
(** Write through the capability check, then through the memory's locks. *)

val guarded_read : t -> Capability.pid -> block:int -> (Bytes.t, string) result

val attest :
  t ->
  nonce:Bytes.t ->
  ?hash:Ra_crypto.Algo.hash ->
  on_complete:(Ra_core.Report.t -> unit) ->
  unit ->
  unit
(** Run the measurement as an interruptible MP at the attestation process's
    top priority: no app can preempt it, so it behaves atomically without
    disabling interrupts — the HYDRA construction. *)

val denials : t -> (Capability.pid * string) list
(** Audit log of rejected accesses, oldest first. *)

val app_activity :
  t -> Capability.pid -> period:Timebase.t -> execution:Timebase.t -> Ra_device.App.t
(** Convenience: start the standard critical app for one of the registered
    processes, writing into the first block of its own region, at its
    registered priority. Raises [Not_found] for unknown pids. *)
