open Ra_sim
open Ra_device

let mp_pid = "hydra-mp"

type app_region = {
  pid : Capability.pid;
  first_block : int;
  block_span : int;
  priority : int;
}

type t = {
  device : Device.t;
  caps : Capability.t;
  apps : app_region list;
  mp_priority : int;
  mutable key_holders : Capability.pid list;
  mutable denials : (Capability.pid * string) list; (* newest first *)
}

let build device ~apps =
  let blocks = Memory.block_count device.Device.memory in
  let owner = Array.make blocks None in
  List.iter
    (fun app ->
      if app.first_block < 0 || app.block_span < 1
         || app.first_block + app.block_span > blocks
      then invalid_arg "Hydra.build: app region out of range";
      for b = app.first_block to app.first_block + app.block_span - 1 do
        match owner.(b) with
        | Some _ -> invalid_arg "Hydra.build: overlapping app regions"
        | None -> owner.(b) <- Some app.pid
      done)
    apps;
  let caps = Capability.create () in
  List.iter
    (fun app ->
      Capability.grant caps app.pid
        {
          Capability.first_block = app.first_block;
          block_span = app.block_span;
          rights = [ Capability.Read; Capability.Write; Capability.Execute ];
        })
    apps;
  (* the attestation process reads everything but writes nothing *)
  Capability.grant caps mp_pid
    { Capability.first_block = 0; block_span = blocks; rights = [ Capability.Read ] };
  let mp_priority =
    1 + List.fold_left (fun acc app -> max acc app.priority) 0 apps
  in
  { device; caps; apps; mp_priority; key_holders = [ mp_pid ]; denials = [] }

let device t = t.device

let capabilities t = t.caps

let mp_priority t = t.mp_priority

let deny t pid reason =
  t.denials <- (pid, reason) :: t.denials;
  Error reason

let read_key t pid =
  if List.mem pid t.key_holders then Ok t.device.Device.config.Device.key
  else deny t pid (Printf.sprintf "%s: no capability for the attestation key" pid)

let guarded_write t pid ~block ~offset payload =
  if not (Capability.allows t.caps pid Capability.Write ~block) then
    deny t pid (Printf.sprintf "%s: no write capability for block %d" pid block)
  else begin
    match
      Memory.write t.device.Device.memory
        ~time:(Engine.now t.device.Device.engine)
        ~block ~offset payload
    with
    | Ok () -> Ok ()
    | Error (Memory.Locked b) -> Error (Printf.sprintf "block %d is locked" b)
  end

let guarded_read t pid ~block =
  if Capability.allows t.caps pid Capability.Read ~block then
    Ok (Memory.read_block t.device.Device.memory block)
  else deny t pid (Printf.sprintf "%s: no read capability for block %d" pid block)

let attest t ~nonce ?(hash = Ra_crypto.Algo.SHA_256) ~on_complete () =
  Ra_core.Mp.run t.device
    {
      Ra_core.Mp.scheme = Ra_core.Scheme.no_lock;
      hash;
      signature = None;
      priority = t.mp_priority;
      counter = None;
    }
    ~nonce ~on_complete ()

let denials t = List.rev t.denials

let app_activity t pid ~period ~execution =
  let app =
    match List.find_opt (fun a -> a.pid = pid) t.apps with
    | Some a -> a
    | None -> raise Not_found
  in
  App.start t.device.Device.engine t.device.Device.cpu t.device.Device.memory
    {
      App.name = pid;
      period;
      execution;
      priority = app.priority;
      deadline = Some period;
      data_blocks = [ app.first_block ];
      write_bytes = 16;
      first_activation = Timebase.ms 100;
    }
