lib/hydra/capability.mli:
