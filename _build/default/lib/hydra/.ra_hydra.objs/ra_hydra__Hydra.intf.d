lib/hydra/hydra.mli: Bytes Capability Ra_core Ra_crypto Ra_device Ra_sim Timebase
