lib/hydra/capability.ml: Hashtbl List Option
