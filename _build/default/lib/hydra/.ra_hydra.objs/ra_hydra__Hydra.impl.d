lib/hydra/hydra.ml: App Array Capability Device Engine List Memory Printf Ra_core Ra_crypto Ra_device Ra_sim Timebase
