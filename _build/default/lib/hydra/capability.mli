(** seL4-style capabilities over the prover's block memory: the mechanism
    HYDRA uses to express SMART's hard-wired access-control rules in
    software (Section 2.1).

    A process may only touch a block if it holds a capability whose region
    covers it with the needed right. Capabilities are granted at system
    build time (the verified microkernel guarantees they cannot be forged),
    so checks here are pure lookups. *)

type right = Read | Write | Execute

type capability = {
  first_block : int;
  block_span : int;
  rights : right list;
}

type pid = string

type t

val create : unit -> t

val grant : t -> pid -> capability -> unit
(** Capabilities accumulate; granting never revokes. *)

val revoke_all : t -> pid -> unit

val allows : t -> pid -> right -> block:int -> bool
(** Does [pid] hold some capability covering [block] with [right]? *)

val regions_of : t -> pid -> capability list
(** In grant order. *)

val pids : t -> pid list
(** Processes holding at least one capability, in first-grant order. *)
