(* Quickstart: attest a simulated IoT device end to end.

   Run with: dune exec examples/quickstart.exe

   Walks through the core API: build a device, build the verifier's view,
   run the on-demand protocol with the SMART baseline, then infect the
   device and watch the same protocol catch it. *)

open Ra_sim
open Ra_device
open Ra_core

let attest_once ~label ~infect =
  (* A prover: 64 blocks modelling 1 GiB of attested memory, with the
     ODROID-XU4 cost calibration from the paper. *)
  let device = Device.create Device.default_config in

  (* The verifier derives its expected firmware image from the same
     provisioning seed — it never touches the live device. *)
  let verifier = Verifier.of_device device in

  if infect then begin
    let rng = Prng.split (Engine.prng device.Device.engine) in
    ignore
      (Ra_malware.Malware.install device ~rng ~block:13 ~priority:8
         Ra_malware.Malware.Static)
  end;

  (* One full on-demand round: challenge -> MP -> report -> verify. *)
  let outcome = ref None in
  Protocol.on_demand device verifier
    { Mp.default_config with Mp.scheme = Scheme.smart }
    ~net_delay:(Timebase.ms 40) ~auth_time:(Timebase.us 200)
    ~on_done:(fun events -> outcome := Some events)
    ();
  Device.run device;

  match !outcome with
  | None -> failwith "protocol did not complete"
  | Some events ->
    Printf.printf "%s\n" label;
    print_string (Timeline.render (Protocol.events_to_markers events));
    Printf.printf "verdict: %s\n\n"
      (Verifier.verdict_to_string events.Protocol.verdict)

let () =
  attest_once ~label:"--- clean device ---" ~infect:false;
  attest_once ~label:"--- device with malware in block 13 ---" ~infect:true
