examples/fire_alarm.mli:
