examples/fire_alarm.ml: Ablations Fire_alarm Ra_experiments
