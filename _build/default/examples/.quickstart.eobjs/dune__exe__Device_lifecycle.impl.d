examples/device_lifecycle.ml: Channel Code_update Device Engine Printf Prng Ra_core Ra_device Ra_malware Ra_sim Reliable_protocol Timebase Verifier
