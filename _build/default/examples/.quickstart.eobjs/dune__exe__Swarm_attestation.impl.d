examples/swarm_attestation.ml: List Printf Ra_sim Ra_swarm Swarm
