examples/device_lifecycle.mli:
