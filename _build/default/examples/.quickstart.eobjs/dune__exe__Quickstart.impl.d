examples/quickstart.ml: Device Engine Mp Printf Prng Protocol Ra_core Ra_device Ra_malware Ra_sim Scheme Timebase Timeline Verifier
