examples/swarm_attestation.mli:
