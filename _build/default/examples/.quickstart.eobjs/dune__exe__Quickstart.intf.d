examples/quickstart.mli:
