(* Collective attestation of a device swarm (the Section 2.1 extension).

   Run with: dune exec examples/swarm_attestation.exe

   A verifier attests a whole tree of interconnected devices in one round:
   the challenge floods down a spanning tree, every node measures its own
   firmware, and aggregate health counts flow back up. Lossy links turn
   into "unresponsive" counts instead of silently healthy nodes. *)

open Ra_swarm

let show label result =
  Printf.printf
    "%-34s healthy=%4d  tampered=%3d  unresponsive=%4d  messages=%5d  round=%s\n"
    label result.Swarm.healthy result.Swarm.tampered result.Swarm.unresponsive
    result.Swarm.messages
    (Ra_sim.Timebase.to_string result.Swarm.duration)

let () =
  let config = Swarm.default_config in
  print_endline "-- binary tree, 1 MiB attested per node, 5 ms links --";
  show "31 nodes, clean" (Swarm.run config ~infected:[]);
  show "31 nodes, 3 infected" (Swarm.run config ~infected:[ 4; 11; 27 ]);
  show "31 nodes, root infected" (Swarm.run config ~infected:[ 0 ]);
  show "31 nodes, 10% message loss"
    (Swarm.run { config with Swarm.loss = 0.1 } ~infected:[ 4 ]);
  print_newline ();
  print_endline "-- scaling: attestation round time grows with tree depth --";
  List.iter
    (fun nodes ->
      let c = { config with Swarm.nodes } in
      show
        (Printf.sprintf "%d nodes (depth %d)" nodes (Swarm.depth c))
        (Swarm.run c ~infected:[]))
    [ 7; 31; 127; 511; 2047 ];
  print_newline ();
  print_endline "-- wider trees are shallower and faster --";
  List.iter
    (fun fanout ->
      let c = { config with Swarm.nodes = 341; Swarm.fanout } in
      show
        (Printf.sprintf "341 nodes, fanout %d (depth %d)" fanout (Swarm.depth c))
        (Swarm.run c ~infected:[]))
    [ 2; 4; 8 ]
