(* The Section 2.5 scenario as a runnable story.

   Run with: dune exec examples/fire_alarm.exe

   A bare-metal fire-alarm application samples its temperature sensor every
   second. The building's control panel (the verifier) periodically attests
   the device. A fire breaks out two seconds into a measurement of 1 GiB of
   memory: under SMART the alarm waits for the whole atomic measurement;
   under the interruptible schemes it sounds at the next activation. *)

open Ra_experiments

let () =
  print_endline "A fire breaks out 2 s into an attestation of 1 GiB of memory.";
  print_endline "The fire-alarm task runs every second and needs 2 ms of CPU.";
  print_newline ();
  print_string (Fire_alarm.render ());
  print_newline ();
  print_endline
    "SMART keeps the CPU for the whole measurement (~9.7 s at the paper's\n\
     ODROID-XU4 rates), so the alarm is late by most of that window — the\n\
     paper's estimate is ~7 s for 1 GB. Every interruptible scheme lets the\n\
     app preempt the measurement and the alarm sounds at the next 1 s tick.\n\
     The locking columns show the other half of the tradeoff: All-Lock and\n\
     Dec-Lock stall the app's data writes for most of the window, Inc-Lock\n\
     only while the recently-measured tail stays locked.";
  print_newline ();
  print_endline "How the same conflict looks on a slower, low-end MCU:";
  print_string (Ablations.platform_contrast ())
