(* Tests for the HYDRA capability model: key isolation, per-process write
   confinement, and atomicity-by-priority with its availability cost. *)

open Ra_sim
open Ra_device
open Ra_hydra

let check = Alcotest.check

let make_system () =
  let device =
    Device.create
      {
        Device.default_config with
        Device.blocks = 16;
        block_size = 256;
        modeled_block_bytes = 16 * 1024 * 1024; (* 256 MiB total: MP ~ 2.4 s *)
      }
  in
  let apps =
    [
      { Hydra.pid = "sensor"; first_block = 0; block_span = 8; priority = 10 };
      { Hydra.pid = "logger"; first_block = 8; block_span = 8; priority = 4 };
    ]
  in
  (device, Hydra.build device ~apps)

(* --- Capability table --------------------------------------------------------- *)

let test_capability_table () =
  let caps = Capability.create () in
  Capability.grant caps "p1"
    { Capability.first_block = 0; block_span = 4; rights = [ Capability.Read ] };
  Capability.grant caps "p1"
    { Capability.first_block = 4; block_span = 2; rights = [ Capability.Write ] };
  check Alcotest.bool "read in region" true
    (Capability.allows caps "p1" Capability.Read ~block:3);
  check Alcotest.bool "write needs the right" false
    (Capability.allows caps "p1" Capability.Write ~block:3);
  check Alcotest.bool "second grant applies" true
    (Capability.allows caps "p1" Capability.Write ~block:5);
  check Alcotest.bool "outside all regions" false
    (Capability.allows caps "p1" Capability.Read ~block:9);
  check Alcotest.bool "unknown pid" false
    (Capability.allows caps "ghost" Capability.Read ~block:0);
  check Alcotest.int "two capabilities recorded" 2
    (List.length (Capability.regions_of caps "p1"));
  check (Alcotest.list Alcotest.string) "pids" [ "p1" ] (Capability.pids caps);
  Capability.revoke_all caps "p1";
  check Alcotest.bool "revoked" false
    (Capability.allows caps "p1" Capability.Read ~block:0);
  Alcotest.check_raises "bad region" (Invalid_argument "Capability.grant: bad region")
    (fun () ->
      Capability.grant caps "p2"
        { Capability.first_block = 0; block_span = 0; rights = [] })

(* --- Key isolation -------------------------------------------------------------- *)

let test_key_isolation () =
  let device, hydra = make_system () in
  (match Hydra.read_key hydra Hydra.mp_pid with
  | Ok key -> check Alcotest.bytes "mp reads the real key" device.Device.config.Device.key key
  | Error e -> Alcotest.failf "mp denied: %s" e);
  (match Hydra.read_key hydra "sensor" with
  | Ok _ -> Alcotest.fail "application read the attestation key"
  | Error _ -> ());
  (match Hydra.read_key hydra "logger" with
  | Ok _ -> Alcotest.fail "application read the attestation key"
  | Error _ -> ());
  check Alcotest.int "denials audited" 2 (List.length (Hydra.denials hydra))

(* --- Write confinement ------------------------------------------------------------ *)

let test_write_confinement () =
  let device, hydra = make_system () in
  (match Hydra.guarded_write hydra "sensor" ~block:2 ~offset:0 (Bytes.of_string "own") with
  | Ok () -> ()
  | Error e -> Alcotest.failf "own-region write denied: %s" e);
  check Alcotest.string "write landed" "own"
    (Bytes.sub_string (Memory.read_block device.Device.memory 2) 0 3);
  (* cross-region write: the single-process-confinement property *)
  (match Hydra.guarded_write hydra "sensor" ~block:9 ~offset:0 (Bytes.of_string "x") with
  | Ok () -> Alcotest.fail "cross-region write allowed"
  | Error _ -> ());
  (* the attestation process cannot write at all *)
  (match Hydra.guarded_write hydra Hydra.mp_pid ~block:0 ~offset:0 (Bytes.of_string "x") with
  | Ok () -> Alcotest.fail "mp wrote to memory"
  | Error _ -> ());
  (* reads: apps see only their own region, mp sees everything *)
  (match Hydra.guarded_read hydra "logger" ~block:1 with
  | Ok _ -> Alcotest.fail "cross-region read allowed"
  | Error _ -> ());
  (match Hydra.guarded_read hydra Hydra.mp_pid ~block:1 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "mp read denied: %s" e)

(* A compromised process trying to relocate malware into its neighbour's
   region is stopped by the capability check — HYDRA's process isolation. *)
let test_malware_confined_by_capabilities () =
  let device, hydra = make_system () in
  let payload = Bytes.make 256 '!' in
  (match Hydra.guarded_write hydra "sensor" ~block:0 ~offset:0 payload with
  | Ok () -> ()
  | Error e -> Alcotest.failf "infection of own region failed: %s" e);
  (match Hydra.guarded_write hydra "sensor" ~block:12 ~offset:0 payload with
  | Ok () -> Alcotest.fail "malware escaped its process region"
  | Error _ -> ());
  (* the infection in its own region is still caught by attestation *)
  let verifier = Ra_core.Verifier.of_device device in
  let report = ref None in
  Hydra.attest hydra ~nonce:(Bytes.of_string "n") ~on_complete:(fun r -> report := Some r) ();
  Engine.run device.Device.engine;
  match !report with
  | None -> Alcotest.fail "no report"
  | Some r ->
    check Alcotest.bool "infection detected" true
      (Ra_core.Verifier.verify verifier r = Ra_core.Verifier.Tampered)

(* --- Atomicity by priority ----------------------------------------------------------- *)

let test_priority_atomicity () =
  (* the MP outranks every app, so a fire during the measurement waits just
     as it would under SMART — HYDRA inherits the availability problem *)
  let device, hydra = make_system () in
  check Alcotest.int "mp priority above apps" 11 (Hydra.mp_priority hydra);
  let app = Hydra.app_activity hydra "sensor" ~period:(Timebase.s 1) ~execution:(Timebase.ms 2) in
  let report = ref None in
  ignore
    (Engine.schedule device.Device.engine ~at:(Timebase.ms 1500) (fun _ ->
         App.declare_fire app ~at:(Timebase.ms 2500);
         Hydra.attest hydra ~nonce:(Bytes.of_string "n")
           ~on_complete:(fun r -> report := Some r)
           ()));
  Engine.run ~until:(Timebase.s 10) device.Device.engine;
  App.stop app;
  Engine.run ~until:(Timebase.s 15) device.Device.engine;
  let r = match !report with Some r -> r | None -> Alcotest.fail "no report" in
  let mp_duration = Timebase.sub r.Ra_core.Report.t_end r.Ra_core.Report.t_start in
  check Alcotest.bool "measurement ~2.4 s" true (mp_duration > Timebase.s 2);
  match App.alarm_latency app with
  | None -> Alcotest.fail "alarm never sounded"
  | Some latency ->
    check Alcotest.bool "alarm waited for the measurement" true
      (latency > Timebase.s 1)

let test_priority_atomicity_is_not_hardware () =
  (* unlike SMART, a *higher*-priority job (e.g. an NMI-style task the
     integrator forgot about) still preempts: the guarantee is only as
     strong as the priority assignment *)
  let device, hydra = make_system () in
  let report = ref None in
  Hydra.attest hydra ~nonce:(Bytes.of_string "n") ~on_complete:(fun r -> report := Some r) ();
  let intruder_ran_mid_measurement = ref false in
  ignore
    (Engine.schedule device.Device.engine ~at:(Timebase.ms 500) (fun _ ->
         ignore
           (Cpu.submit device.Device.cpu ~name:"nmi" ~priority:99
              ~duration:(Timebase.ms 1)
              ~on_complete:(fun () -> intruder_ran_mid_measurement := !report = None)
              ())));
  Engine.run device.Device.engine;
  check Alcotest.bool "higher priority still preempts" true !intruder_ran_mid_measurement

let () =
  Alcotest.run "ra_hydra"
    [
      ("capabilities", [ Alcotest.test_case "table" `Quick test_capability_table ]);
      ( "hydra",
        [
          Alcotest.test_case "key isolation" `Quick test_key_isolation;
          Alcotest.test_case "write confinement" `Quick test_write_confinement;
          Alcotest.test_case "malware confined" `Quick test_malware_confined_by_capabilities;
          Alcotest.test_case "atomicity by priority" `Quick test_priority_atomicity;
          Alcotest.test_case "priority is not hardware" `Quick
            test_priority_atomicity_is_not_hardware;
        ] );
    ]
