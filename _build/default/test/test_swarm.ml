(* Tests for the collective-attestation extension. *)

open Ra_swarm

let check = Alcotest.check

let config = Swarm.default_config

let test_clean_swarm () =
  let r = Swarm.run config ~infected:[] in
  check Alcotest.int "all healthy" 31 r.Swarm.healthy;
  check Alcotest.int "none tampered" 0 r.Swarm.tampered;
  check Alcotest.int "none unresponsive" 0 r.Swarm.unresponsive;
  check Alcotest.bool "messages flowed" true (r.Swarm.messages >= 62)

let test_infected_nodes_counted () =
  let infected = [ 0; 9; 30 ] in
  let r = Swarm.run config ~infected in
  check Alcotest.int "tampered count" 3 r.Swarm.tampered;
  check Alcotest.int "healthy count" 28 r.Swarm.healthy

let test_deterministic () =
  let r1 = Swarm.run { config with Swarm.loss = 0.2 } ~infected:[ 5 ] in
  let r2 = Swarm.run { config with Swarm.loss = 0.2 } ~infected:[ 5 ] in
  check Alcotest.int "same healthy" r1.Swarm.healthy r2.Swarm.healthy;
  check Alcotest.int "same unresponsive" r1.Swarm.unresponsive r2.Swarm.unresponsive;
  check Alcotest.int "same messages" r1.Swarm.messages r2.Swarm.messages

let test_loss_yields_unresponsive () =
  let r = Swarm.run { config with Swarm.loss = 0.15; Swarm.seed = 3 } ~infected:[] in
  check Alcotest.bool "lossy links leave gaps" true (r.Swarm.unresponsive > 0);
  check Alcotest.int "accounting adds up" 31
    (r.Swarm.healthy + r.Swarm.tampered + r.Swarm.unresponsive)

let test_total_loss () =
  let r = Swarm.run { config with Swarm.loss = 1.0 } ~infected:[] in
  check Alcotest.int "everything unresponsive" 31 r.Swarm.unresponsive

let test_accounting_invariant () =
  (* over a range of seeds and loss rates, counts always partition the swarm *)
  List.iter
    (fun (seed, loss) ->
      let r = Swarm.run { config with Swarm.seed; Swarm.loss } ~infected:[ 2; 17 ] in
      check Alcotest.int
        (Printf.sprintf "partition (seed %d, loss %.1f)" seed loss)
        31
        (r.Swarm.healthy + r.Swarm.tampered + r.Swarm.unresponsive))
    [ (1, 0.); (2, 0.05); (3, 0.1); (4, 0.3); (5, 0.5) ]

let test_depth_and_scaling () =
  check Alcotest.int "31-node binary tree depth" 5 (Swarm.depth config);
  check Alcotest.int "127-node depth" 7 (Swarm.depth { config with Swarm.nodes = 127 });
  let small = Swarm.run config ~infected:[] in
  let large = Swarm.run { config with Swarm.nodes = 127 } ~infected:[] in
  check Alcotest.bool "deeper tree takes longer" true
    (large.Swarm.duration > small.Swarm.duration);
  check Alcotest.int "message count scales with nodes" (2 * 127) large.Swarm.messages

let test_fanout_reduces_depth () =
  let narrow = { config with Swarm.nodes = 341; Swarm.fanout = 2 } in
  let wide = { config with Swarm.nodes = 341; Swarm.fanout = 8 } in
  check Alcotest.bool "wider is shallower" true (Swarm.depth wide < Swarm.depth narrow);
  let rn = Swarm.run narrow ~infected:[] and rw = Swarm.run wide ~infected:[] in
  check Alcotest.bool "wider is faster" true (rw.Swarm.duration < rn.Swarm.duration)

let test_validation () =
  Alcotest.check_raises "empty swarm" (Invalid_argument "Swarm.run: empty swarm")
    (fun () -> ignore (Swarm.run { config with Swarm.nodes = 0 } ~infected:[]))

(* --- Heartbeat (DARPA-style absence detection) -------------------------------- *)

let hb_config = Heartbeat.default_config

let test_heartbeat_quiet_network () =
  let r = Heartbeat.run hb_config ~captures:[] in
  check (Alcotest.list Alcotest.int) "no alarms" [] r.Heartbeat.alarmed;
  check Alcotest.bool "heartbeats flowed" true (r.Heartbeat.heartbeats > 16 * 50)

let test_heartbeat_capture_detected () =
  let capture =
    { Heartbeat.node = 5; from_ = Ra_sim.Timebase.s 20; until_ = Ra_sim.Timebase.s 30 }
  in
  let r = Heartbeat.run hb_config ~captures:[ capture ] in
  check (Alcotest.list Alcotest.int) "exactly the captured node" [ 5 ] r.Heartbeat.alarmed;
  check Alcotest.int "true alarm" 1 r.Heartbeat.true_alarms;
  check Alcotest.int "no false alarms" 0 r.Heartbeat.false_alarms;
  check Alcotest.int "nothing missed" 0 r.Heartbeat.missed

let test_heartbeat_short_capture_hides () =
  (* an offline window below the threshold slips through *)
  let capture =
    { Heartbeat.node = 5;
      from_ = Ra_sim.Timebase.s 20;
      until_ = Ra_sim.Timebase.ms 20_900 }
  in
  let r = Heartbeat.run hb_config ~captures:[ capture ] in
  check Alcotest.int "capture below threshold missed" 1 r.Heartbeat.missed

let test_heartbeat_loss_vs_threshold () =
  (* lossy links with a tight threshold raise false alarms; a looser
     threshold silences them *)
  let lossy = { hb_config with Heartbeat.loss = 0.25; seed = 11 } in
  let tight = Heartbeat.run { lossy with Heartbeat.threshold = Ra_sim.Timebase.ms 1500 } ~captures:[] in
  let loose = Heartbeat.run { lossy with Heartbeat.threshold = Ra_sim.Timebase.s 6 } ~captures:[] in
  check Alcotest.bool "tight threshold + loss -> false alarms" true
    (tight.Heartbeat.false_alarms > 0);
  check Alcotest.int "loose threshold quiet" 0 loose.Heartbeat.false_alarms

let test_heartbeat_permanent_capture () =
  let capture =
    { Heartbeat.node = 0;
      from_ = Ra_sim.Timebase.s 40;
      until_ = hb_config.Heartbeat.horizon }
  in
  let r = Heartbeat.run hb_config ~captures:[ capture ] in
  check Alcotest.bool "permanently silent node flagged" true
    (List.mem 0 r.Heartbeat.alarmed)

let test_heartbeat_validation () =
  Alcotest.check_raises "unknown node"
    (Invalid_argument "Heartbeat.run: capture of unknown node") (fun () ->
      ignore
        (Heartbeat.run hb_config
           ~captures:[ { Heartbeat.node = 99; from_ = 0; until_ = 1 } ]))

let () =
  Alcotest.run "ra_swarm"
    [
      ( "heartbeat",
        [
          Alcotest.test_case "quiet network" `Quick test_heartbeat_quiet_network;
          Alcotest.test_case "capture detected" `Quick test_heartbeat_capture_detected;
          Alcotest.test_case "short capture hides" `Quick test_heartbeat_short_capture_hides;
          Alcotest.test_case "loss vs threshold" `Quick test_heartbeat_loss_vs_threshold;
          Alcotest.test_case "permanent capture" `Quick test_heartbeat_permanent_capture;
          Alcotest.test_case "validation" `Quick test_heartbeat_validation;
        ] );
      ( "swarm",
        [
          Alcotest.test_case "clean" `Quick test_clean_swarm;
          Alcotest.test_case "infected counted" `Quick test_infected_nodes_counted;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "loss -> unresponsive" `Quick test_loss_yields_unresponsive;
          Alcotest.test_case "total loss" `Quick test_total_loss;
          Alcotest.test_case "accounting invariant" `Quick test_accounting_invariant;
          Alcotest.test_case "depth & scaling" `Quick test_depth_and_scaling;
          Alcotest.test_case "fanout" `Quick test_fanout_reduces_depth;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
