(* Tests for elliptic-curve arithmetic, ECDSA and RSA. Point vectors were
   cross-checked against an independent implementation. *)

open Ra_bignum
open Ra_pk

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let point = Alcotest.testable
    (fun fmt -> function
      | Ec.Infinity -> Format.fprintf fmt "inf"
      | Ec.Affine (x, y) -> Format.fprintf fmt "(%a, %a)" Nat.pp x Nat.pp y)
    (fun a b ->
      match (a, b) with
      | Ec.Infinity, Ec.Infinity -> true
      | Ec.Affine (x1, y1), Ec.Affine (x2, y2) -> Nat.equal x1 x2 && Nat.equal y1 y2
      | Ec.Infinity, Ec.Affine _ | Ec.Affine _, Ec.Infinity -> false)

let p256 = Ec.secp256r1
let g = Ec.generator p256

(* --- curve arithmetic --------------------------------------------------------- *)

let test_generators_on_curve () =
  List.iter
    (fun curve ->
      check Alcotest.bool (curve.Ec.name ^ " generator on curve") true
        (Ec.is_on_curve curve (Ec.generator curve)))
    Ec.all_curves

let test_known_multiples () =
  let two_g = Ec.scalar_mul p256 Nat.two g in
  check point "2G"
    (Ec.Affine
       ( Nat.of_hex "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978",
         Nat.of_hex "07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1" ))
    two_g;
  let three_g = Ec.scalar_mul p256 (Nat.of_int 3) g in
  check point "3G"
    (Ec.Affine
       ( Nat.of_hex "5ecbe4d1a6330a44c8f7ef951d4bf165e6c6b721efada985fb41661bc6e7fd6c",
         Nat.of_hex "8734640c4998ff7e374b06ce1a64a2ecd82ab036384fb83d9a79b127a27d5032" ))
    three_g;
  let big =
    Nat.of_decimal
      "57896044605178124381348723474703786764998477612067880171211129530534256022184"
  in
  check point "large scalar"
    (Ec.Affine
       ( Nat.of_hex "2afa386b3f2bdcdb83f4d83f8fa3874d7b74dcb454bd644fdd6bf3d1f2da8db6",
         Nat.of_hex "72184be1caa8563462b536f10852d665ae8a64fdf1eb8d4c946ad589796f729c" ))
    (Ec.scalar_mul p256 big g)

let test_group_identities () =
  check point "0 * G = inf" Ec.Infinity (Ec.scalar_mul p256 Nat.zero g);
  check point "n * G = inf" Ec.Infinity (Ec.scalar_mul p256 p256.Ec.n g);
  check point "G + inf = G" g (Ec.add p256 g Ec.Infinity);
  check point "inf + G = G" g (Ec.add p256 Ec.Infinity g);
  check point "G + (-G) = inf" Ec.Infinity (Ec.add p256 g (Ec.negate p256 g));
  check point "2G = G + G" (Ec.scalar_mul p256 Nat.two g) (Ec.double p256 g)

let prop_scalar_distributes =
  QCheck.Test.make ~name:"(a+b)G = aG + bG" ~count:25
    QCheck.(pair (int_range 1 1_000_000) (int_range 1 1_000_000))
    (fun (a, b) ->
      let lhs = Ec.scalar_mul p256 (Nat.of_int (a + b)) g in
      let rhs =
        Ec.add p256 (Ec.scalar_mul p256 (Nat.of_int a) g)
          (Ec.scalar_mul p256 (Nat.of_int b) g)
      in
      lhs = rhs)

let prop_multiples_on_curve =
  QCheck.Test.make ~name:"kG stays on curve" ~count:25
    QCheck.(int_range 1 1_000_000_000)
    (fun k -> Ec.is_on_curve p256 (Ec.scalar_mul p256 (Nat.of_int k) g))

let test_all_curves_scalar_mul () =
  List.iter
    (fun curve ->
      let p = Ec.scalar_mul curve (Nat.of_int 12345) (Ec.generator curve) in
      check Alcotest.bool (curve.Ec.name ^ " 12345G on curve") true
        (Ec.is_on_curve curve p);
      check Alcotest.bool (curve.Ec.name ^ " not infinity") true (p <> Ec.Infinity))
    Ec.all_curves

let test_curve_of_name () =
  check Alcotest.bool "known" true (Ec.curve_of_name "secp256r1" <> None);
  check Alcotest.bool "unknown" true (Ec.curve_of_name "brainpool" = None)

(* --- ECDSA ----------------------------------------------------------------------- *)

let test_ecdsa_roundtrip () =
  let rng = Ra_sim.Prng.create ~seed:42 in
  let msg = Bytes.of_string "attestation report body" in
  List.iter
    (fun curve ->
      let kp = Ecdsa.generate curve rng in
      let signature = Ecdsa.sign ~hash:Ra_crypto.Algo.SHA_256 kp rng msg in
      check Alcotest.bool (curve.Ec.name ^ " verifies") true
        (Ecdsa.verify ~hash:Ra_crypto.Algo.SHA_256 ~curve ~public:kp.Ecdsa.q msg
           signature);
      check Alcotest.bool (curve.Ec.name ^ " rejects altered message") false
        (Ecdsa.verify ~hash:Ra_crypto.Algo.SHA_256 ~curve ~public:kp.Ecdsa.q
           (Bytes.of_string "tampered") signature))
    Ec.all_curves

let test_ecdsa_wrong_key () =
  let rng = Ra_sim.Prng.create ~seed:43 in
  let msg = Bytes.of_string "m" in
  let kp = Ecdsa.generate p256 rng in
  let other = Ecdsa.generate p256 rng in
  let signature = Ecdsa.sign ~hash:Ra_crypto.Algo.SHA_256 kp rng msg in
  check Alcotest.bool "other key rejects" false
    (Ecdsa.verify ~hash:Ra_crypto.Algo.SHA_256 ~curve:p256 ~public:other.Ecdsa.q msg
       signature)

let test_ecdsa_signature_malleability_guard () =
  let rng = Ra_sim.Prng.create ~seed:44 in
  let msg = Bytes.of_string "m" in
  let kp = Ecdsa.generate p256 rng in
  let signature = Ecdsa.sign ~hash:Ra_crypto.Algo.SHA_256 kp rng msg in
  let bad_r = { signature with Ecdsa.r = Nat.zero } in
  let bad_s = { signature with Ecdsa.s = p256.Ec.n } in
  check Alcotest.bool "r = 0 rejected" false
    (Ecdsa.verify ~hash:Ra_crypto.Algo.SHA_256 ~curve:p256 ~public:kp.Ecdsa.q msg bad_r);
  check Alcotest.bool "s = n rejected" false
    (Ecdsa.verify ~hash:Ra_crypto.Algo.SHA_256 ~curve:p256 ~public:kp.Ecdsa.q msg bad_s)

let test_ecdsa_deterministic_keypair () =
  let kp = Ecdsa.keypair_of_scalar p256 (Nat.of_int 7) in
  check point "public key is 7G" (Ec.scalar_mul p256 (Nat.of_int 7) g) kp.Ecdsa.q;
  Alcotest.check_raises "zero scalar"
    (Invalid_argument "Ecdsa.keypair_of_scalar: zero scalar") (fun () ->
      ignore (Ecdsa.keypair_of_scalar p256 p256.Ec.n))

let test_ecdsa_hash_choices () =
  let rng = Ra_sim.Prng.create ~seed:45 in
  let msg = Bytes.of_string "hash agility" in
  let kp = Ecdsa.generate Ec.secp160r1 rng in
  (* SHA-512 digest is wider than the 161-bit order: exercises truncation *)
  let signature = Ecdsa.sign ~hash:Ra_crypto.Algo.SHA_512 kp rng msg in
  check Alcotest.bool "sha512 over secp160r1" true
    (Ecdsa.verify ~hash:Ra_crypto.Algo.SHA_512 ~curve:Ec.secp160r1
       ~public:kp.Ecdsa.q msg signature);
  check Alcotest.bool "hash mismatch rejected" false
    (Ecdsa.verify ~hash:Ra_crypto.Algo.SHA_256 ~curve:Ec.secp160r1
       ~public:kp.Ecdsa.q msg signature)

(* --- RFC 6979 deterministic ECDSA -------------------------------------------------- *)

let rfc6979_key =
  Ecdsa.keypair_of_scalar p256
    (Nat.of_hex "C9AFA9D845BA75166B5C215767B1D6934E50C3DB36E89B127B8A622B120F6721")

let test_rfc6979_vector () =
  (* RFC 6979 appendix A.2.5, P-256 + SHA-256, message "sample" *)
  let sg = Ecdsa.sign_deterministic ~hash:Ra_crypto.Algo.SHA_256 rfc6979_key
      (Bytes.of_string "sample") in
  check Alcotest.string "r"
    "efd48b2aacb6a8fd1140dd9cd45e81d69d2c877b56aaf991c34d0ea84eaf3716"
    (Nat.to_hex sg.Ecdsa.r);
  check Alcotest.string "s"
    "f7cb1c942d657c41d436c7a1b6e29f65f3e900dbb9aff4064dc4ab2f843acda8"
    (Nat.to_hex sg.Ecdsa.s);
  (* second vector from the same appendix: message "test" *)
  let sg = Ecdsa.sign_deterministic ~hash:Ra_crypto.Algo.SHA_256 rfc6979_key
      (Bytes.of_string "test") in
  check Alcotest.string "r (test)"
    "f1abb023518351cd71d881567b1ea663ed3efcf6c5132b354f28d3b0b7d38367"
    (Nat.to_hex sg.Ecdsa.r);
  check Alcotest.string "s (test)"
    "019f4113742a2b14bd25926b49c649155f267e60d3814b4c0cc84250e46f0083"
    (Nat.to_hex sg.Ecdsa.s)

let test_rfc6979_properties () =
  let msg = Bytes.of_string "attestation report" in
  let sg1 = Ecdsa.sign_deterministic ~hash:Ra_crypto.Algo.SHA_256 rfc6979_key msg in
  let sg2 = Ecdsa.sign_deterministic ~hash:Ra_crypto.Algo.SHA_256 rfc6979_key msg in
  check Alcotest.bool "same message, identical signature" true
    (Nat.equal sg1.Ecdsa.r sg2.Ecdsa.r && Nat.equal sg1.Ecdsa.s sg2.Ecdsa.s);
  let other = Ecdsa.sign_deterministic ~hash:Ra_crypto.Algo.SHA_256 rfc6979_key
      (Bytes.of_string "different message") in
  check Alcotest.bool "different message, different nonce" false
    (Nat.equal sg1.Ecdsa.r other.Ecdsa.r);
  check Alcotest.bool "verifies normally" true
    (Ecdsa.verify ~hash:Ra_crypto.Algo.SHA_256 ~curve:p256 ~public:rfc6979_key.Ecdsa.q
       msg sg1);
  (* works on every curve in the library *)
  List.iter
    (fun curve ->
      let kp = Ecdsa.keypair_of_scalar curve (Nat.of_int 987654321) in
      let sg = Ecdsa.sign_deterministic ~hash:Ra_crypto.Algo.SHA_256 kp msg in
      check Alcotest.bool (curve.Ec.name ^ " deterministic verifies") true
        (Ecdsa.verify ~hash:Ra_crypto.Algo.SHA_256 ~curve ~public:kp.Ecdsa.q msg sg))
    Ec.all_curves

(* --- RSA ------------------------------------------------------------------------- *)

let test_rsa_roundtrip () =
  let msg = Bytes.of_string "measurement digest payload" in
  List.iter
    (fun bits ->
      let key = Rsa.test_key ~bits in
      let signature = Rsa.sign ~hash:Rsa.SHA_256 key msg in
      check Alcotest.int "signature size" (bits / 8) (Bytes.length signature);
      check Alcotest.bool "verifies" true
        (Rsa.verify ~hash:Rsa.SHA_256 key.Rsa.pub ~msg ~signature);
      check Alcotest.bool "altered message rejected" false
        (Rsa.verify ~hash:Rsa.SHA_256 key.Rsa.pub ~msg:(Bytes.of_string "x") ~signature);
      let flipped = Bytes.copy signature in
      Bytes.set flipped 3 (Char.chr (Char.code (Bytes.get flipped 3) lxor 1));
      check Alcotest.bool "altered signature rejected" false
        (Rsa.verify ~hash:Rsa.SHA_256 key.Rsa.pub ~msg ~signature:flipped))
    [ 1024; 2048 ]

let test_rsa_sha512 () =
  let key = Rsa.test_key_1024 in
  let msg = Bytes.of_string "sha-512 digestinfo" in
  let signature = Rsa.sign ~hash:Rsa.SHA_512 key msg in
  check Alcotest.bool "verifies" true
    (Rsa.verify ~hash:Rsa.SHA_512 key.Rsa.pub ~msg ~signature);
  check Alcotest.bool "hash mismatch rejected" false
    (Rsa.verify ~hash:Rsa.SHA_256 key.Rsa.pub ~msg ~signature)

let prop_rsa_raw_roundtrip =
  QCheck.Test.make ~name:"m^d^e = m (textbook RSA)" ~count:10
    QCheck.(int_range 2 1_000_000)
    (fun m ->
      let key = Rsa.test_key_1024 in
      let m = Nat.of_int m in
      Nat.equal m (Rsa.raw_public key.Rsa.pub (Rsa.raw_private key m)))

let test_rsa_fixture_sanity () =
  List.iter
    (fun (key, bits) ->
      (* a product of two b/2-bit primes has b or b-1 bits *)
      let n_bits = Nat.bit_length key.Rsa.pub.Rsa.n in
      check Alcotest.bool "modulus size" true (n_bits = bits || n_bits = bits - 1);
      check Alcotest.(option int) "public exponent" (Some 65537)
        (Nat.to_int key.Rsa.pub.Rsa.e))
    [ (Rsa.test_key_1024, 1024); (Rsa.test_key_2048, 2048); (Rsa.test_key_4096, 4096) ];
  Alcotest.check_raises "no fixture"
    (Invalid_argument "Rsa.test_key: no fixture for this size") (fun () ->
      ignore (Rsa.test_key ~bits:512))

let test_rsa_wrong_length_signature () =
  let key = Rsa.test_key_1024 in
  check Alcotest.bool "short signature rejected" false
    (Rsa.verify ~hash:Rsa.SHA_256 key.Rsa.pub ~msg:(Bytes.of_string "m")
       ~signature:(Bytes.create 64))

let () =
  Alcotest.run "ra_pk"
    [
      ( "ec",
        [
          Alcotest.test_case "generators on curve" `Quick test_generators_on_curve;
          Alcotest.test_case "known multiples" `Quick test_known_multiples;
          Alcotest.test_case "group identities" `Quick test_group_identities;
          Alcotest.test_case "all curves scalar mul" `Quick test_all_curves_scalar_mul;
          Alcotest.test_case "curve_of_name" `Quick test_curve_of_name;
          qtest prop_scalar_distributes;
          qtest prop_multiples_on_curve;
        ] );
      ( "ecdsa",
        [
          Alcotest.test_case "roundtrip all curves" `Quick test_ecdsa_roundtrip;
          Alcotest.test_case "wrong key" `Quick test_ecdsa_wrong_key;
          Alcotest.test_case "range guards" `Quick test_ecdsa_signature_malleability_guard;
          Alcotest.test_case "deterministic keypair" `Quick test_ecdsa_deterministic_keypair;
          Alcotest.test_case "hash agility & truncation" `Quick test_ecdsa_hash_choices;
          Alcotest.test_case "rfc6979 vectors" `Quick test_rfc6979_vector;
          Alcotest.test_case "rfc6979 properties" `Quick test_rfc6979_properties;
        ] );
      ( "rsa",
        [
          Alcotest.test_case "roundtrip" `Quick test_rsa_roundtrip;
          Alcotest.test_case "sha-512 digestinfo" `Quick test_rsa_sha512;
          Alcotest.test_case "fixtures" `Quick test_rsa_fixture_sanity;
          Alcotest.test_case "wrong-length signature" `Quick test_rsa_wrong_length_signature;
          qtest prop_rsa_raw_roundtrip;
        ] );
    ]
