test/test_hydra.ml: Alcotest App Bytes Capability Cpu Device Engine Hydra List Memory Ra_core Ra_device Ra_hydra Ra_sim Timebase
