test/test_device.ml: Alcotest App Array Bytes Char Cost_model Cpu Device Engine Float Gen Int List Memory Prng QCheck QCheck_alcotest Ra_crypto Ra_device Ra_sim Stats Taskset Timebase
