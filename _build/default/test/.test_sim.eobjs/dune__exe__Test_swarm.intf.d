test/test_swarm.mli:
