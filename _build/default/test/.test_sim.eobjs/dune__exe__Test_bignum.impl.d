test/test_bignum.ml: Alcotest Bytes List Nat QCheck QCheck_alcotest Ra_bignum Ra_sim
