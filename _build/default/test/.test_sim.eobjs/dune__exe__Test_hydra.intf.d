test/test_hydra.mli:
