test/test_pk.mli:
