test/test_pk.ml: Alcotest Bytes Char Ec Ecdsa Format List Nat QCheck QCheck_alcotest Ra_bignum Ra_crypto Ra_pk Ra_sim Rsa
