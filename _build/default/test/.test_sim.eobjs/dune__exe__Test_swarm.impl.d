test/test_swarm.ml: Alcotest Heartbeat List Printf Ra_sim Ra_swarm Swarm
