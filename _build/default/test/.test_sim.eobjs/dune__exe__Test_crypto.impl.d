test/test_crypto.ml: Aes Alcotest Algo Blake2b Blake2s Bytes Bytesutil Char Cmac Digest_intf Gen Hkdf Hmac Int64 List Mac_stream Printf QCheck QCheck_alcotest Ra_crypto Sha256 Sha512 String
