test/test_sim.ml: Alcotest Array Bytes Channel Engine Hashtbl Heap Int Int64 List Prng QCheck QCheck_alcotest Ra_sim Stats Timebase Trace
