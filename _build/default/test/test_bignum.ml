(* Tests for the arbitrary-precision naturals: known values cross-checked
   against an independent implementation, plus algebraic properties. *)

open Ra_bignum

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let nat = Alcotest.testable Nat.pp Nat.equal

let dec = Nat.of_decimal

(* --- conversions ----------------------------------------------------------- *)

let test_of_int () =
  check nat "zero" Nat.zero (Nat.of_int 0);
  check nat "one" Nat.one (Nat.of_int 1);
  check Alcotest.(option int) "roundtrip small" (Some 123456789)
    (Nat.to_int (Nat.of_int 123456789));
  check Alcotest.(option int) "roundtrip max_int" (Some max_int)
    (Nat.to_int (Nat.of_int max_int));
  Alcotest.check_raises "negative" (Invalid_argument "Nat.of_int: negative")
    (fun () -> ignore (Nat.of_int (-1)))

let test_to_int_overflow () =
  let big = Nat.shift_left Nat.one 80 in
  check Alcotest.(option int) "too big" None (Nat.to_int big)

let test_decimal_roundtrip () =
  let cases = [ "0"; "1"; "42"; "123456789012345678901234567890123456789" ] in
  List.iter (fun s -> check Alcotest.string s s (Nat.to_decimal (dec s))) cases;
  check nat "underscores" (dec "1000000") (dec "1_000_000");
  Alcotest.check_raises "bad digit"
    (Invalid_argument "Nat.of_decimal: invalid character") (fun () ->
      ignore (dec "12x"))

let test_hex_roundtrip () =
  check Alcotest.string "hex" "deadbeef" (Nat.to_hex (Nat.of_hex "deadbeef"));
  check nat "0x prefix" (Nat.of_hex "ff") (Nat.of_hex "0xff");
  check nat "odd length" (Nat.of_hex "f") (Nat.of_int 15)

let test_bytes_roundtrip () =
  let v = dec "340282366920938463463374607431768211455" in
  (* 2^128 - 1 *)
  let b = Nat.to_bytes_be v in
  check Alcotest.int "16 bytes" 16 (Bytes.length b);
  check nat "roundtrip" v (Nat.of_bytes_be b);
  let padded = Nat.to_bytes_be ~size:20 v in
  check Alcotest.int "padded" 20 (Bytes.length padded);
  check nat "padded same value" v (Nat.of_bytes_be padded);
  Alcotest.check_raises "size too small"
    (Invalid_argument "Nat.to_bytes_be: size too small") (fun () ->
      ignore (Nat.to_bytes_be ~size:15 v))

(* --- known values (cross-checked against Python) ------------------------------ *)

let a_dec = "123456789012345678901234567890123456789"
let b_dec = "987654321098765432109876543210"

let test_known_arithmetic () =
  let a = dec a_dec and b = dec b_dec in
  check Alcotest.string "mul"
    "121932631137021795226185032733744855963362292333223746380111126352690"
    (Nat.to_decimal (Nat.mul a b));
  check Alcotest.string "add" "123456789999999999999999999999999999999"
    (Nat.to_decimal (Nat.add a b));
  check Alcotest.string "sub" "123456788024691357802469135780246913579"
    (Nat.to_decimal (Nat.sub a b));
  let q, r = Nat.divmod a b in
  check Alcotest.string "quotient" "124999998" (Nat.to_decimal q);
  check Alcotest.string "remainder" "850308642085030864208626543209" (Nat.to_decimal r)

let test_known_modpow () =
  let m = Nat.of_hex "fffffffffffffffffffffffffffffffeffffffffffffffffffffffff" in
  check Alcotest.string "modpow"
    "3027a7008f9ec023e3f90645c95a99b5cd1d245ba67c88acebe3737b"
    (Nat.to_hex (Nat.mod_pow ~base:(dec "3") ~exponent:(dec "65537") ~modulus:m))

let test_known_inverse_gcd () =
  (match Nat.mod_inverse (dec "3") ~modulus:(dec "65537") with
  | Some inv -> check Alcotest.string "inverse" "21846" (Nat.to_decimal inv)
  | None -> Alcotest.fail "expected inverse");
  check Alcotest.string "gcd" "21" (Nat.to_decimal (Nat.gcd (dec "462") (dec "1071")));
  check Alcotest.bool "non-coprime has no inverse" true
    (Nat.mod_inverse (dec "6") ~modulus:(dec "9") = None)

let test_bit_operations () =
  check Alcotest.int "bit_length 0" 0 (Nat.bit_length Nat.zero);
  check Alcotest.int "bit_length 1" 1 (Nat.bit_length Nat.one);
  check Alcotest.int "bit_length 2^79" 80 (Nat.bit_length (Nat.of_hex "80000000000000000000"));
  check Alcotest.bool "test_bit" true (Nat.test_bit (Nat.of_int 5) 2);
  check Alcotest.bool "test_bit clear" false (Nat.test_bit (Nat.of_int 5) 1);
  check Alcotest.bool "test_bit beyond" false (Nat.test_bit (Nat.of_int 5) 100);
  check Alcotest.bool "even" true (Nat.is_even (Nat.of_int 4));
  check Alcotest.bool "odd" false (Nat.is_even (Nat.of_int 5));
  check Alcotest.bool "zero even" true (Nat.is_even Nat.zero)

let test_division_edges () =
  Alcotest.check_raises "divide by zero" Division_by_zero (fun () ->
      ignore (Nat.divmod Nat.one Nat.zero));
  let q, r = Nat.divmod (Nat.of_int 5) (Nat.of_int 7) in
  check nat "small / big quotient" Nat.zero q;
  check nat "small / big remainder" (Nat.of_int 5) r;
  let q, r = Nat.divmod (dec a_dec) (dec a_dec) in
  check nat "self / self" Nat.one q;
  check nat "self mod self" Nat.zero r;
  Alcotest.check_raises "negative sub" (Invalid_argument "Nat.sub: negative result")
    (fun () -> ignore (Nat.sub Nat.one Nat.two))

(* --- properties ------------------------------------------------------------------ *)

let gen_nat =
  (* random naturals up to ~416 bits, with a bias to interesting shapes *)
  QCheck.make
    ~print:(fun n -> Nat.to_hex n)
    QCheck.Gen.(
      let* n_bytes = 0 -- 52 in
      let* s = string_size ~gen:char (return n_bytes) in
      return (Nat.of_bytes_be (Bytes.of_string s)))

let gen_nat_pos =
  QCheck.make
    ~print:(fun n -> Nat.to_hex n)
    QCheck.Gen.(
      let* n_bytes = 1 -- 52 in
      let* s = string_size ~gen:char (return n_bytes) in
      let v = Nat.of_bytes_be (Bytes.of_string s) in
      return (if Nat.is_zero v then Nat.one else v))

let prop_add_commutative =
  QCheck.Test.make ~name:"add commutative" ~count:300 (QCheck.pair gen_nat gen_nat)
    (fun (a, b) -> Nat.equal (Nat.add a b) (Nat.add b a))

let prop_add_sub_roundtrip =
  QCheck.Test.make ~name:"(a+b)-b = a" ~count:300 (QCheck.pair gen_nat gen_nat)
    (fun (a, b) -> Nat.equal (Nat.sub (Nat.add a b) b) a)

let prop_mul_distributes =
  QCheck.Test.make ~name:"a(b+c) = ab+ac" ~count:200
    (QCheck.triple gen_nat gen_nat gen_nat) (fun (a, b, c) ->
      Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)))

let prop_divmod_invariant =
  QCheck.Test.make ~name:"a = q*b + r, r < b" ~count:300
    (QCheck.pair gen_nat gen_nat_pos) (fun (a, b) ->
      let q, r = Nat.divmod a b in
      Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0)

let prop_shift_is_mul_pow2 =
  QCheck.Test.make ~name:"shift_left = mul 2^k" ~count:200
    (QCheck.pair gen_nat (QCheck.int_range 0 100)) (fun (a, k) ->
      let pow2 = Nat.shift_left Nat.one k in
      Nat.equal (Nat.shift_left a k) (Nat.mul a pow2))

let prop_shift_roundtrip =
  QCheck.Test.make ~name:"shift_right (shift_left a k) k = a" ~count:200
    (QCheck.pair gen_nat (QCheck.int_range 0 100)) (fun (a, k) ->
      Nat.equal (Nat.shift_right (Nat.shift_left a k) k) a)

let naive_mod_pow ~base ~exponent ~modulus =
  let rec go acc e =
    if Nat.is_zero e then acc
    else go (Nat.mod_mul acc base ~modulus) (Nat.sub e Nat.one)
  in
  go (Nat.rem Nat.one modulus) exponent

let prop_modpow_matches_naive =
  QCheck.Test.make ~name:"mod_pow = naive for small exponents" ~count:60
    (QCheck.triple gen_nat (QCheck.int_range 0 40) gen_nat_pos)
    (fun (base, e, modulus) ->
      Nat.equal
        (Nat.mod_pow ~base ~exponent:(Nat.of_int e) ~modulus)
        (naive_mod_pow ~base ~exponent:(Nat.of_int e) ~modulus))

let prop_mod_pow_fast_equivalent =
  QCheck.Test.make ~name:"mod_pow_fast = mod_pow" ~count:60
    (QCheck.triple gen_nat gen_nat gen_nat_pos) (fun (base, exponent, modulus) ->
      Nat.equal
        (Nat.mod_pow_fast ~base ~exponent ~modulus)
        (Nat.mod_pow ~base ~exponent ~modulus))

let prop_mod_pow_fast_odd_moduli =
  (* force the Montgomery path: odd multi-limb moduli *)
  QCheck.Test.make ~name:"montgomery path matches" ~count:60
    (QCheck.triple gen_nat gen_nat gen_nat_pos) (fun (base, exponent, m) ->
      let modulus =
        let m = Nat.add (Nat.shift_left m 27) Nat.one in
        if Nat.is_even m then Nat.add m Nat.one else m
      in
      Nat.equal
        (Nat.mod_pow_fast ~base ~exponent ~modulus)
        (Nat.mod_pow ~base ~exponent ~modulus))

let prop_mod_inverse =
  QCheck.Test.make ~name:"a * a^-1 = 1 (mod m)" ~count:200
    (QCheck.pair gen_nat_pos gen_nat_pos) (fun (a, m) ->
      let m = Nat.add m Nat.two in
      match Nat.mod_inverse a ~modulus:m with
      | None -> not (Nat.equal (Nat.gcd (Nat.rem a m) m) Nat.one) || Nat.is_zero (Nat.rem a m)
      | Some inv -> Nat.equal (Nat.mod_mul (Nat.rem a m) inv ~modulus:m) Nat.one)

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"bytes roundtrip" ~count:300 gen_nat (fun a ->
      Nat.equal a (Nat.of_bytes_be (Nat.to_bytes_be a)))

let prop_compare_consistent =
  QCheck.Test.make ~name:"compare consistent with sub" ~count:300
    (QCheck.pair gen_nat gen_nat) (fun (a, b) ->
      match Nat.compare a b with
      | 0 -> Nat.equal a b
      | c when c > 0 -> Nat.equal (Nat.add (Nat.sub a b) b) a
      | _ -> Nat.equal (Nat.add (Nat.sub b a) a) b)

let prop_mod_ops_against_int =
  (* exhaustive-ish small-int cross-check of the modular ops *)
  QCheck.Test.make ~name:"mod ops match int arithmetic" ~count:500
    QCheck.(triple (int_range 0 10000) (int_range 0 10000) (int_range 2 997))
    (fun (a, b, m) ->
      let na = Nat.of_int (a mod m) and nb = Nat.of_int (b mod m) in
      let nm = Nat.of_int m in
      Nat.to_int (Nat.mod_add na nb ~modulus:nm) = Some ((a mod m + b mod m) mod m)
      && Nat.to_int (Nat.mod_mul na nb ~modulus:nm) = Some (a mod m * (b mod m) mod m)
      && Nat.to_int (Nat.mod_sub na nb ~modulus:nm)
         = Some (((a mod m) - (b mod m) + m) mod m))

let test_random_below () =
  let rng = Ra_sim.Prng.create ~seed:11 in
  let bound = dec "1000000000000000000000000000" in
  for _ = 1 to 200 do
    let v = Nat.random_below rng ~bound in
    if Nat.compare v bound >= 0 then Alcotest.fail "random_below out of range"
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Nat.random_below: zero bound") (fun () ->
      ignore (Nat.random_below rng ~bound:Nat.zero))

let () =
  Alcotest.run "ra_bignum"
    [
      ( "conversions",
        [
          Alcotest.test_case "of_int" `Quick test_of_int;
          Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
          Alcotest.test_case "decimal" `Quick test_decimal_roundtrip;
          Alcotest.test_case "hex" `Quick test_hex_roundtrip;
          Alcotest.test_case "bytes" `Quick test_bytes_roundtrip;
        ] );
      ( "known values",
        [
          Alcotest.test_case "arithmetic" `Quick test_known_arithmetic;
          Alcotest.test_case "modpow" `Quick test_known_modpow;
          Alcotest.test_case "inverse & gcd" `Quick test_known_inverse_gcd;
          Alcotest.test_case "bits" `Quick test_bit_operations;
          Alcotest.test_case "division edges" `Quick test_division_edges;
          Alcotest.test_case "random_below" `Quick test_random_below;
        ] );
      ( "properties",
        [
          qtest prop_add_commutative;
          qtest prop_add_sub_roundtrip;
          qtest prop_mul_distributes;
          qtest prop_divmod_invariant;
          qtest prop_shift_is_mul_pow2;
          qtest prop_shift_roundtrip;
          qtest prop_modpow_matches_naive;
          qtest prop_mod_pow_fast_equivalent;
          qtest prop_mod_pow_fast_odd_moduli;
          qtest prop_mod_inverse;
          qtest prop_bytes_roundtrip;
          qtest prop_compare_consistent;
          qtest prop_mod_ops_against_int;
        ] );
    ]
