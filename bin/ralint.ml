(* ralint — run the Ra_lint rule families (DESIGN.md §10, §14) over the
   repo's own sources and gate against the committed ratchet baseline.

   Two passes share one file walk: the per-file rules (D/P/U/I), then the
   interprocedural program analysis (L/O/C) over every file that parsed.

   Exit status: 0 when every finding is covered by the baseline, 1 when a
   new finding (or a parse failure) appears. Stale baseline entries are
   reported as drift but do not fail the run; `--update-baseline`
   re-ratchets. *)

let usage =
  "ralint [options] [paths...]\n\
   Static analysis for determinism (D), parallel-safety (P), unsafe-code\n\
   discipline (U), interface hygiene (I), lock discipline (L), protocol\n\
   order (O) and secret flow (C).\n\
   Default paths: lib bin bench test examples."

let json_out = ref false
let baseline_path = ref "LINT_BASELINE.json"
let update_baseline = ref false
let gate_empty = ref false
let summaries = ref false
let only = ref ""
let rule = ref ""
let root = ref "."
let rest = ref []

let spec =
  [
    ("--json", Arg.Set json_out, " emit the report as JSON on stdout");
    ( "--baseline",
      Arg.Set_string baseline_path,
      "FILE ratchet baseline (default LINT_BASELINE.json; ignored if absent)" );
    ( "--update-baseline",
      Arg.Set update_baseline,
      " accept all current findings into the baseline file and exit 0" );
    ( "--gate-empty-baseline",
      Arg.Set gate_empty,
      " fail (exit 3) unless the baseline file is empty — CI keeps the \
       ratchet fully tightened" );
    ( "--only",
      Arg.Set_string only,
      "FAMS comma-separated rule families to report (e.g. L,O,C)" );
    ("--rule", Arg.Set_string rule, "ID report one rule only (e.g. O1)");
    ( "--summaries",
      Arg.Set summaries,
      " dump the converged per-function lock/journal/taint summaries and \
       exit" );
    ("--root", Arg.Set_string root, "DIR repository root (default .)");
  ]

let read_text path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* Repo-relative .ml files under [paths], sorted for stable reports. *)
let collect_ml_files ~root paths =
  let skip name = name = "_build" || name = ".git" || name = "_opam" in
  let out = ref [] in
  let rec walk rel =
    let full = Filename.concat root rel in
    if Sys.is_directory full then
      Array.iter
        (fun name ->
          if not (skip name) then
            walk (if rel = "" then name else rel ^ "/" ^ name))
        (Sys.readdir full)
    else if Filename.check_suffix rel ".ml" then out := rel :: !out
  in
  List.iter
    (fun p -> if Sys.file_exists (Filename.concat root p) then walk p)
    paths;
  List.sort compare !out

(* The family/rule filter applies symmetrically to findings and baseline
   entries, so `--only L` shows the L slice of both sides of the diff. *)
let keep_rule r =
  if !rule <> "" then r = !rule
  else if !only = "" then true
  else
    let fams = String.split_on_char ',' !only in
    List.exists (fun f -> String.trim f <> "" && String.trim f = String.make 1 r.[0]) fams

let () =
  Arg.parse spec (fun p -> rest := p :: !rest) usage;
  (* ralint: allow D2 — lint wall time is diagnostic output, not simulated state *)
  let t0 = Unix.gettimeofday () in
  let paths =
    if !rest = [] then [ "lib"; "bin"; "bench"; "test"; "examples" ]
    else List.rev !rest
  in
  let root = !root in
  let config =
    {
      Ra_lint.default_config with
      Ra_lint.p2_paths = Some (Ra_lint.Reach.parallel_reachable ~root);
    }
  in
  let files = collect_ml_files ~root paths in
  let sources = List.map (fun f -> (f, read_text (Filename.concat root f))) files in
  let per_file =
    List.concat_map
      (fun (file, source) ->
        match Ra_lint.lint_source ~config ~file source with
        | fs ->
          let interface =
            let under_lib =
              String.length file >= 4 && String.sub file 0 4 = "lib/"
            in
            if not under_lib then []
            else
              let mli = Filename.concat root (Filename.remove_extension file ^ ".mli") in
              Ra_lint.check_interface ~config ~file ~mli_exists:(Sys.file_exists mli)
                source
          in
          fs @ interface
        | exception Ra_lint.Lint_parse_error (msg, line) ->
          [
            {
              Ra_lint.rule = "E1";
              file;
              line;
              col = 0;
              fingerprint = Printf.sprintf "E1:%s" file;
              message = "file does not parse: " ^ msg;
            };
          ])
      sources
  in
  let program = Ra_lint.Program.load sources in
  if !summaries then begin
    print_string (Ra_lint.Program.summaries ~config program);
    exit 0
  end;
  let findings =
    List.filter
      (fun (f : Ra_lint.finding) -> keep_rule f.rule)
      (per_file @ Ra_lint.Program.analyze ~config program)
  in
  let baseline_file =
    if Filename.is_relative !baseline_path then Filename.concat root !baseline_path
    else !baseline_path
  in
  if !update_baseline then begin
    let oc = open_out baseline_file in
    output_string oc
      (Ra_lint.baseline_to_json (List.map Ra_lint.entry_of_finding findings));
    close_out oc;
    Printf.printf "ralint: wrote %d finding(s) to %s\n" (List.length findings)
      !baseline_path;
    exit 0
  end;
  let baseline =
    if Sys.file_exists baseline_file then
      try
        List.filter
          (fun (b : Ra_lint.baseline_entry) -> keep_rule b.b_rule)
          (Ra_lint.baseline_of_json (read_text baseline_file))
      with Ra_experiments.Benchkit.Parse_error msg ->
        Printf.eprintf "ralint: malformed baseline %s: %s\n" !baseline_path msg;
        exit 2
    else []
  in
  if !gate_empty && baseline <> [] then begin
    Printf.eprintf
      "ralint: baseline %s carries %d accepted finding(s); the ratchet must \
       stay empty — fix the findings instead\n"
      !baseline_path (List.length baseline);
    exit 3
  end;
  let report = Ra_lint.diff ~baseline findings in
  print_string
    (if !json_out then Ra_lint.render_json report else Ra_lint.render_human report);
  (* ralint: allow D2 — lint wall time is diagnostic output, not simulated state *)
  Printf.eprintf "ralint: %d file(s) in %.2fs\n" (List.length files)
    (Unix.gettimeofday () -. t0);
  exit (if Ra_lint.new_findings report = [] then 0 else 1)
