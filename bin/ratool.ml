(* ratool: command-line front end for every experiment in the reproduction.
   Each subcommand regenerates one of the paper's artifacts. *)

open Cmdliner
open Ra_experiments

let seed_arg =
  let doc = "Random seed driving the deterministic simulation." in
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc)

let trials_arg default =
  let doc = "Monte-Carlo trials per data point." in
  Arg.(value & opt int default & info [ "trials" ] ~docv:"N" ~doc)

(* Evaluating this term sets the Ra_parallel default, so commands opt in by
   prepending [$ jobs_term] and taking a leading unit. Results do not depend
   on the value — only wall time does. *)
let jobs_term =
  let doc =
    "Domains for the parallel experiment drivers (default: $(b,RA_JOBS) or \
     the host's core count; 1 forces sequential)."
  in
  Term.(
    const (fun jobs -> Option.iter Ra_parallel.set_default_jobs jobs)
    $ Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc))

(* comma-separated positive job counts, rejected at parse time (usage error
   before any experiment runs) rather than after a full campaign *)
let jobs_list_conv =
  let parse s =
    let entries = List.map String.trim (String.split_on_char ',' s) in
    let ints = List.map int_of_string_opt entries in
    if entries = [] || List.exists (function Some j -> j < 1 | None -> true) ints
    then
      Error
        (`Msg
          (Printf.sprintf
             "invalid job list %S: expected comma-separated positive integers \
              (e.g. 1,4)"
             s))
    else Ok (List.filter_map Fun.id ints)
  in
  let print fmt js =
    Format.pp_print_string fmt (String.concat "," (List.map string_of_int js))
  in
  Arg.conv ~docv:"J1,J2" (parse, print)

let check_jobs_arg =
  Arg.(
    value & opt jobs_list_conv []
    & info [ "check-jobs" ] ~docv:"J1,J2"
        ~doc:
          "Repeat the run at each of these job counts and fail unless every \
           counter digest is bit-identical.")

(* --- fig1: on-demand protocol timeline ------------------------------- *)

let scheme_arg =
  let doc = "Scheme: smart, no-lock, all-lock, dec-lock, inc-lock, cpy-lock or smarm." in
  Arg.(value & opt string "smart" & info [ "scheme" ] ~docv:"SCHEME" ~doc)

let run_fig1 seed scheme_name =
  match Ra_core.Scheme.of_name scheme_name with
  | None -> `Error (false, "unknown scheme: " ^ scheme_name)
  | Some scheme ->
    let device =
      Ra_device.Device.create
        { Ra_device.Device.default_config with Ra_device.Device.seed }
    in
    let verifier = Ra_core.Verifier.of_device device in
    let result = ref None in
    Ra_core.Protocol.on_demand device verifier
      { Ra_core.Mp.default_config with Ra_core.Mp.scheme }
      ~net_delay:(Ra_sim.Timebase.ms 40)
      ~auth_time:(Ra_sim.Timebase.us 200)
      ~on_done:(fun events -> result := Some events)
      ();
    Ra_device.Device.run device;
    (match !result with
    | None -> `Error (false, "protocol did not complete")
    | Some events ->
      Printf.printf "Fig. 1 / E1 — on-demand RA timeline (%s)\n\n"
        scheme.Ra_core.Scheme.name;
      print_string (Ra_core.Timeline.render (Ra_core.Protocol.events_to_markers events));
      Printf.printf "\nverdict: %s\n"
        (Ra_core.Verifier.verdict_to_string events.Ra_core.Protocol.verdict);
      `Ok ())

let fig1_cmd =
  let info = Cmd.info "timeline" ~doc:"Fig. 1: on-demand RA protocol timeline" in
  Cmd.v info Term.(ret (const run_fig1 $ seed_arg $ scheme_arg))

(* --- fig2 -------------------------------------------------------------- *)

let run_fig2 () =
  let cost = Ra_device.Cost_model.odroid_xu4 in
  print_string (Fig2.render cost);
  print_newline ();
  print_string (Fig2.render_claims cost);
  print_newline ();
  print_string (Fig2.crossover_table cost)

let fig2_cmd =
  let info = Cmd.info "fig2" ~doc:"Fig. 2: hash and signature timings (model)" in
  Cmd.v info Term.(const run_fig2 $ const ())

(* --- table1 ------------------------------------------------------------ *)

let run_table1 () seed trials = print_string (Table1.render ~trials ~seed ())

let table1_cmd =
  let info = Cmd.info "table1" ~doc:"Table 1: measured feature matrix" in
  Cmd.v info Term.(const run_table1 $ jobs_term $ seed_arg $ trials_arg 40)

(* --- fig4 -------------------------------------------------------------- *)

let run_fig4 seed = print_string (Fig4.render ~seed ())

let fig4_cmd =
  let info = Cmd.info "fig4" ~doc:"Fig. 4: temporal-consistency windows" in
  Cmd.v info Term.(const run_fig4 $ seed_arg)

(* --- fig5 / qoa --------------------------------------------------------- *)

let run_fig5 seed trials =
  print_string (Fig5.render_story ~seed ());
  print_newline ();
  print_string
    (Fig5.detection_sweep ~seed ~trials ~t_m:(Ra_sim.Timebase.s 10)
       ~dwells:(List.map Ra_sim.Timebase.s [ 1; 2; 4; 6; 8; 10; 12 ])
       ());
  print_newline ();
  print_string (Fig5.freshness_table ())

let fig5_cmd =
  let info = Cmd.info "qoa" ~doc:"Fig. 5: Quality of Attestation (ERASMUS)" in
  Cmd.v info Term.(const run_fig5 $ seed_arg $ trials_arg 60)

(* --- smarm -------------------------------------------------------------- *)

let run_smarm () seed trials =
  print_string (Smarm_sweep.sweep_rounds ~blocks:64 ~max_rounds:14 ~game_trials:200000 ~seed ());
  print_newline ();
  print_string (Smarm_sweep.sweep_blocks ~blocks_list:[ 4; 16; 64; 256; 1024 ] ~trials:200000 ~seed ());
  let escape, (lo, hi) = Smarm_sweep.simulated_escape_rate ~blocks:64 ~rounds:1 ~trials ~seed () in
  Printf.printf
    "\nfull-device simulation, 1 round, B=64: escape %.3f (95%% CI %.3f-%.3f, theory %.3f)\n"
    escape lo hi (Ra_core.Smarm.per_round_escape_probability ~blocks:64)

let smarm_cmd =
  let info = Cmd.info "smarm" ~doc:"Section 3.2: SMARM escape probabilities" in
  Cmd.v info Term.(const run_smarm $ jobs_term $ seed_arg $ trials_arg 200)

(* --- fire alarm ---------------------------------------------------------- *)

let run_fire seed = print_string (Fire_alarm.render ~seed ())

let fire_cmd =
  let info = Cmd.info "fire-alarm" ~doc:"Section 2.5: alarm latency during MP" in
  Cmd.v info Term.(const run_fire $ seed_arg)

(* --- ablations ------------------------------------------------------------ *)

let run_ablations () seed =
  print_string (Ablations.lock_granularity ~seed ());
  print_newline ();
  print_string (Ablations.measurement_order ~seed ());
  print_newline ();
  print_string (Ablations.smarm_block_count ~seed ());
  print_newline ();
  print_string (Ablations.zero_data_countermeasure ~seed ());
  print_newline ();
  print_string (Ablations.platform_contrast ());
  print_newline ();
  print_string (Ablations.hybrid_schemes ())

let ablations_cmd =
  let info = Cmd.info "ablations" ~doc:"Design-choice ablations" in
  Cmd.v info Term.(const run_ablations $ jobs_term $ seed_arg)

(* --- schedulability ------------------------------------------------------------------- *)

let run_sched _seed = print_string (Ra_device.Taskset.schedulability_table ())

let sched_cmd =
  let info = Cmd.info "schedulability" ~doc:"Task-set deadline misses under attestation" in
  Cmd.v info Term.(const run_sched $ seed_arg)

(* --- advisor ------------------------------------------------------------------------ *)

let run_advisor () =
  print_string (Advisor.render Advisor.default_profile);
  print_newline ();
  print_string
    (Advisor.render
       { Advisor.default_profile with Advisor.has_shadow_memory = true });
  print_newline ();
  print_string
    (Advisor.render
       {
         Advisor.default_profile with
         Advisor.unattended = true;
         has_secure_clock = true;
         hard_deadline_ms = None;
       })

let advisor_cmd =
  let info = Cmd.info "advise" ~doc:"Rank schemes for a deployment profile" in
  Cmd.v info Term.(const run_advisor $ const ())

(* --- report wire format demo ----------------------------------------------------- *)

let run_report seed =
  let device =
    Ra_device.Device.create
      { Ra_device.Device.default_config with Ra_device.Device.seed; block_size = 256 }
  in
  let verifier = Ra_core.Verifier.of_device device in
  let report = ref None in
  Ra_core.Mp.run device Ra_core.Mp.default_config
    ~nonce:(Ra_sim.Prng.bytes (Ra_sim.Engine.prng device.Ra_device.Device.engine) 16)
    ~on_complete:(fun r -> report := Some r)
    ();
  Ra_device.Device.run device;
  match !report with
  | None -> print_endline "measurement did not complete"
  | Some r ->
    let wire = Ra_core.Report.encode r in
    Printf.printf "encoded report: %d bytes\n" (Bytes.length wire);
    let hex = Ra_crypto.Bytesutil.to_hex wire in
    let rec dump i =
      if i < String.length hex then begin
        Printf.printf "  %s\n" (String.sub hex i (min 64 (String.length hex - i)));
        dump (i + 64)
      end
    in
    dump 0;
    (match Ra_core.Report.decode wire with
    | Ok decoded ->
      Printf.printf "decoded ok; verdict: %s\n"
        (Ra_core.Verifier.verdict_to_string (Ra_core.Verifier.verify verifier decoded))
    | Error e -> Printf.printf "decode failed: %s\n" e)

let report_cmd =
  let info = Cmd.info "report" ~doc:"Encode, dump, decode and verify one report" in
  Cmd.v info Term.(const run_report $ seed_arg)

(* --- fleet rollout ----------------------------------------------------------------- *)

let run_rollout _seed =
  print_endline "E-RO — attested firmware rollout across a fleet";
  let fleet = Ra_core.Fleet.create ~master_secret:(Bytes.of_string "rollout-master") () in
  let config =
    { Ra_device.Device.default_config with Ra_device.Device.block_size = 256 }
  in
  let ids = [ "pump-a"; "pump-b"; "valve-1"; "valve-2" ] in
  List.iter (fun id -> ignore (Ra_core.Fleet.provision fleet id ~config ())) ids;
  (* valve-2's erasure code is compromised: it protects block 11 *)
  List.iter
    (fun id ->
      let device = Ra_core.Fleet.device fleet id in
      let cheat_blocks = if id = "valve-2" then [ 11 ] else [] in
      let outcome = ref None in
      Ra_core.Code_update.run device Ra_core.Code_update.default_config
        ~cheat_blocks ~new_seed:90210
        ~on_done:(fun o -> outcome := Some o)
        ();
      Ra_device.Device.run device;
      match !outcome with
      | None -> Printf.printf "%-10s update hung\n" id
      | Some o ->
        Printf.printf "%-10s erasure=%-8s update=%-8s completed=%s\n" id
          (if o.Ra_core.Code_update.erasure_proof_ok then "proved" else "REJECTED")
          (Ra_core.Verifier.verdict_to_string o.Ra_core.Code_update.update_verdict)
          (Ra_sim.Timebase.to_string o.Ra_core.Code_update.completed_at))
    ids

let rollout_cmd =
  let info = Cmd.info "rollout" ~doc:"Erase-then-update a whole fleet" in
  Cmd.v info Term.(const run_rollout $ seed_arg)

(* --- incremental attestation --------------------------------------------------- *)

let run_incremental seed = print_string (Incremental_eval.render ~seed ())

let incremental_cmd =
  let info = Cmd.info "incremental" ~doc:"Merkle-tree incremental attestation" in
  Cmd.v info Term.(const run_incremental $ seed_arg)

(* --- latency profile --------------------------------------------------------- *)

let run_latency seed = print_string (Latency_profile.render ~seed ())

let latency_cmd =
  let info = Cmd.info "latency" ~doc:"Real-time latency percentiles and lock Gantts" in
  Cmd.v info Term.(const run_latency $ seed_arg)

(* --- hydra --------------------------------------------------------------------- *)

let run_hydra _seed =
  let open Ra_hydra in
  print_endline "E-HY — HYDRA: SMART rules as seL4-style capabilities";
  let device =
    Ra_device.Device.create
      { Ra_device.Device.default_config with Ra_device.Device.blocks = 16; block_size = 256 }
  in
  let hydra =
    Hydra.build device
      ~apps:
        [
          { Hydra.pid = "sensor"; first_block = 0; block_span = 8; priority = 10 };
          { Hydra.pid = "logger"; first_block = 8; block_span = 8; priority = 4 };
        ]
  in
  let verifier = Ra_core.Verifier.of_device device in
  let report = ref None in
  Hydra.attest hydra ~nonce:(Bytes.of_string "cli-demo")
    ~on_complete:(fun r -> report := Some r)
    ();
  Ra_device.Device.run device;
  (match !report with
  | Some r ->
    Printf.printf "attestation of the pristine device: %s\n"
      (Ra_core.Verifier.verdict_to_string (Ra_core.Verifier.verify verifier r))
  | None -> print_endline "attestation did not complete");
  Printf.printf "attestation priority: %d (apps max: 10) -> de-facto atomic\n"
    (Hydra.mp_priority hydra);
  let show_access label result =
    Printf.printf "%-44s %s\n" label
      (match result with Ok _ -> "ALLOWED" | Error e -> "denied (" ^ e ^ ")")
  in
  show_access "hydra-mp reads the attestation key" (Hydra.read_key hydra Hydra.mp_pid);
  show_access "sensor reads the attestation key" (Hydra.read_key hydra "sensor");
  show_access "sensor writes its own region"
    (Hydra.guarded_write hydra "sensor" ~block:2 ~offset:0 (Bytes.of_string "ok"));
  show_access "sensor writes logger's region"
    (Hydra.guarded_write hydra "sensor" ~block:12 ~offset:0 (Bytes.of_string "x"));
  Printf.printf "audited denials: %d\n" (List.length (Hydra.denials hydra))

let hydra_cmd =
  let info = Cmd.info "hydra" ~doc:"HYDRA capability-based SMART rules" in
  Cmd.v info Term.(const run_hydra $ seed_arg)

(* --- seed demo ------------------------------------------------------------- *)

let run_seed_demo seed =
  let device =
    Ra_device.Device.create
      { Ra_device.Device.default_config with Ra_device.Device.seed; block_size = 256 }
  in
  let eng = device.Ra_device.Device.engine in
  let verifier = Ra_core.Verifier.of_device device in
  let inbox = ref [] in
  let config =
    {
      Ra_core.Seed_ra.default_config with
      Ra_core.Seed_ra.shared_seed = seed;
      mean_interval = Ra_sim.Timebase.s 20;
    }
  in
  let prover =
    Ra_core.Seed_ra.start device config ~send:(fun (t, r) -> inbox := (t, r) :: !inbox)
  in
  Ra_sim.Engine.run ~until:(Ra_sim.Timebase.minutes 3) eng;
  Ra_core.Seed_ra.stop prover;
  Ra_sim.Engine.run ~until:(Ra_sim.Timebase.add (Ra_sim.Timebase.minutes 3) (Ra_sim.Timebase.s 30)) eng;
  let received = List.rev !inbox in
  let expected =
    Ra_core.Seed_ra.schedule ~shared_seed:seed ~mean_interval:config.Ra_core.Seed_ra.mean_interval
      ~first_after:Ra_sim.Timebase.zero ~count:(List.length received)
  in
  let outcome =
    Ra_core.Seed_ra.monitor verifier ~expected ~tolerance:(Ra_sim.Timebase.s 10) received
  in
  Printf.printf
    "E9 — SeED: %d reports sent; verifier outcome: accepted=%d tampered=%d replayed=%d missing=%d\n"
    (Ra_core.Seed_ra.reports_sent prover)
    outcome.Ra_core.Seed_ra.accepted outcome.Ra_core.Seed_ra.tampered
    outcome.Ra_core.Seed_ra.replayed outcome.Ra_core.Seed_ra.missing;
  (* replay attack: re-deliver the first report at the end *)
  match received with
  | [] -> ()
  | first :: _ ->
    let replayed_stream = received @ [ first ] in
    let outcome =
      Ra_core.Seed_ra.monitor verifier ~expected ~tolerance:(Ra_sim.Timebase.s 10)
        replayed_stream
    in
    Printf.printf "with a replayed first report: replayed=%d (detected)\n"
      outcome.Ra_core.Seed_ra.replayed

let seed_cmd =
  let info = Cmd.info "seed-demo" ~doc:"Section 3.3: SeED non-interactive attestation" in
  Cmd.v info Term.(const run_seed_demo $ seed_arg)

(* --- dos --------------------------------------------------------------------- *)

let run_dos seed =
  print_string (Dos.render ~seed ());
  print_newline ();
  print_string (Dos.render_duplicates ~seed ())

let dos_cmd =
  let info = Cmd.info "dos" ~doc:"Section 3.3: request-flooding resilience" in
  Cmd.v info Term.(const run_dos $ seed_arg)

(* --- swatt ------------------------------------------------------------------ *)

let run_swatt seed =
  print_endline "E-SW — software-based attestation (Section 2.1 background)";
  print_string
    (Ra_core.Swatt.separation_table ~seed Ra_core.Swatt.default_config ~overhead:1.15
       ~jitter_levels:[ 0.0; 0.01; 0.05; 0.15; 0.30; 0.60 ]);
  print_endline
    "With jitter comparable to the adversary's overhead margin, no threshold\n\
     separates honest from compromised runs: the paper calls the security\n\
     of this approach uncertain."

let swatt_cmd =
  let info = Cmd.info "swatt" ~doc:"Software-based attestation timing analysis" in
  Cmd.v info Term.(const run_swatt $ seed_arg)

(* --- heartbeat --------------------------------------------------------------- *)

let run_heartbeat seed =
  let open Ra_swarm in
  let config = { Heartbeat.default_config with Heartbeat.seed } in
  print_endline "E-HB — DARPA-style absence detection (physical capture)";
  let capture =
    { Heartbeat.node = 5; from_ = Ra_sim.Timebase.s 20; until_ = Ra_sim.Timebase.s 30 }
  in
  let r = Heartbeat.run config ~captures:[ capture ] in
  Printf.printf
    "capture of node 5 for 10 s: alarmed=[%s] true=%d false=%d missed=%d (heartbeats %d)
"
    (String.concat "; " (List.map string_of_int r.Heartbeat.alarmed))
    r.Heartbeat.true_alarms r.Heartbeat.false_alarms r.Heartbeat.missed
    r.Heartbeat.heartbeats;
  print_newline ();
  print_string
    (Heartbeat.threshold_sweep
       { config with Heartbeat.loss = 0.2 }
       ~capture_length:(Ra_sim.Timebase.s 6)
       ~factors:[ 1.5; 2.5; 4.0; 7.0 ])

let heartbeat_cmd =
  let info = Cmd.info "heartbeat" ~doc:"Physical-capture absence detection" in
  Cmd.v info Term.(const run_heartbeat $ seed_arg)

(* --- fleet -------------------------------------------------------------------- *)

let infect_device device ~block =
  let rng = Ra_sim.Prng.split (Ra_sim.Engine.prng device.Ra_device.Device.engine) in
  ignore
    (Ra_malware.Malware.install device ~rng ~block ~priority:8
       Ra_malware.Malware.Static)

let run_fleet_demo () =
  print_endline "E-FL — fleet attestation with HKDF-derived per-device keys";
  let fleet = Ra_core.Fleet.create ~master_secret:(Bytes.of_string "demo-master-secret") () in
  let config =
    { Ra_device.Device.default_config with Ra_device.Device.block_size = 256 }
  in
  let ids = [ "hvac-1"; "hvac-2"; "door-lock"; "smoke-3"; "camera-9" ] in
  List.iter (fun id -> ignore (Ra_core.Fleet.provision fleet id ~config ())) ids;
  infect_device (Ra_core.Fleet.device fleet "door-lock") ~block:10;
  let roll = Ra_core.Fleet.attest_all fleet Ra_core.Mp.default_config in
  Printf.printf "clean:    %s
" (String.concat ", " roll.Ra_core.Fleet.clean);
  Printf.printf "tampered: %s
" (String.concat ", " roll.Ra_core.Fleet.tampered)

(* Counter-and-root signature of a roll call: everything that must be
   invariant across --jobs and --shards. The shard count and per-shard
   roots legitimately differ between shard counts, so --check-shards
   compares this signature; --check-jobs additionally demands identical
   shard roots (same shard count, so nothing may move). *)
let fr_signature r =
  let open Ra_core in
  let roll = r.Fleet_roll.roll in
  ( (roll.Fleet.clean, roll.Fleet.tampered),
    ( roll.Fleet.digest_requests,
      roll.Fleet.cache_hits,
      roll.Fleet.store_hits,
      roll.Fleet.hashed,
      roll.Fleet.batch_hashed,
      roll.Fleet.distinct_blocks ),
    roll.Fleet.fleet_root )

let fr_root r = Ra_crypto.Bytesutil.to_hex r.Fleet_roll.roll.Ra_core.Fleet.fleet_root

(* Roll-call-at-scale: N devices on one shared-firmware release, every
   1000th one infected, enrolled virtually and attested shard by shard
   over the Ra_parallel pool. Verdicts, counters and the fleet Merkle
   root are invariant under --jobs and --shards; only wall time moves. *)
let run_fleet_scale ~seed ~devices ~shards ~check_jobs ~check_shards
    ~journal_dir =
  Printf.printf "E-FL — fleet roll call at scale: %d devices\n" devices;
  let journal =
    Option.map
      (fun dir -> Ra_journal.Journal.create (Ra_journal.Disk.file ~dir))
      journal_dir
  in
  let r = Fleet_roll.run ~devices ~seed ?shards ?journal () in
  print_string (Fleet_roll.render r);
  (match journal_dir with
  | Some dir ->
    Printf.printf "campaign journal recorded in %s/ (ratool replay --journal %s)\n"
      dir dir
  | None -> ());
  let mismatches =
    List.filter_map
      (fun j ->
        let r' = Fleet_roll.run ~devices ~seed ~shards:r.Fleet_roll.shards ~jobs:j () in
        if
          fr_signature r' = fr_signature r
          && r'.Fleet_roll.roll.Ra_core.Fleet.shard_roots
             = r.Fleet_roll.roll.Ra_core.Fleet.shard_roots
        then begin
          Printf.printf "jobs=%d: fleet root and counters bit-identical\n" j;
          None
        end
        else
          Some
            (Printf.sprintf "jobs=%d diverged:\n  %s\n  %s" j (fr_root r)
               (fr_root r')))
      check_jobs
    @ List.filter_map
        (fun s ->
          let r' = Fleet_roll.run ~devices ~seed ~shards:s () in
          if fr_signature r' = fr_signature r then begin
            Printf.printf "shards=%d: fleet root and counters bit-identical\n" s;
            None
          end
          else
            Some
              (Printf.sprintf "shards=%d diverged:\n  %s\n  %s" s (fr_root r)
                 (fr_root r')))
        check_shards
  in
  if mismatches = [] then `Ok ()
  else begin
    List.iter (fun m -> Printf.eprintf "ratool fleet: %s\n" m) mismatches;
    prerr_endline "ratool fleet: invariance check failed";
    exit 1
  end

let run_fleet () seed devices shards check_jobs check_shards journal_dir =
  if devices = 0 then begin
    run_fleet_demo ();
    `Ok ()
  end
  else
    run_fleet_scale ~seed ~devices ~shards ~check_jobs ~check_shards
      ~journal_dir

let devices_arg =
  let doc =
    "Scale mode: enrol $(docv) devices on one firmware release and run a \
     sharded parallel roll call (0 runs the 5-device demo)."
  in
  Arg.(value & opt int 0 & info [ "devices" ] ~docv:"N" ~doc)

let shards_arg =
  Arg.(
    value & opt (some int) None
    & info [ "shards" ] ~docv:"S"
        ~doc:
          "Contiguous roster shards, one pool task each (default: the jobs \
           count). The fleet Merkle root and every counter are identical \
           for any value.")

let check_shards_arg =
  Arg.(
    value & opt jobs_list_conv []
    & info [ "check-shards" ] ~docv:"S1,S2"
        ~doc:
          "Repeat the roll call at each of these shard counts and fail \
           unless the fleet root and all counters are bit-identical.")

let fleet_journal_arg =
  Arg.(
    value & opt (some string) None
    & info [ "journal" ] ~docv:"DIR"
        ~doc:
          "Record the campaign (parameters, counters, fleet root and shard \
           roots) as a journal under $(docv), replayable with $(b,ratool \
           replay --journal DIR).")

let fleet_cmd =
  let info = Cmd.info "fleet" ~doc:"Multi-device attestation with derived keys" in
  Cmd.v info
    Term.(
      ret
        (const run_fleet $ jobs_term $ seed_arg $ devices_arg $ shards_arg
       $ check_jobs_arg $ check_shards_arg $ fleet_journal_arg))

(* --- swarm ----------------------------------------------------------------- *)

let run_swarm seed =
  let open Ra_swarm in
  let config = { Swarm.default_config with Swarm.seed } in
  let show label result =
    Printf.printf "%-30s healthy=%3d tampered=%2d unresponsive=%3d messages=%4d duration=%s\n"
      label result.Swarm.healthy result.Swarm.tampered result.Swarm.unresponsive
      result.Swarm.messages
      (Ra_sim.Timebase.to_string result.Swarm.duration)
  in
  print_endline "E10 — collective attestation over a spanning tree";
  show "31 nodes, clean" (Swarm.run config ~infected:[]);
  show "31 nodes, 3 infected" (Swarm.run config ~infected:[ 4; 11; 27 ]);
  show "31 nodes, 10% msg loss" (Swarm.run { config with Swarm.loss = 0.1 } ~infected:[ 4 ]);
  show "127 nodes, clean" (Swarm.run { config with Swarm.nodes = 127 } ~infected:[])

let swarm_cmd =
  let info = Cmd.info "swarm" ~doc:"Collective (swarm) attestation extension" in
  Cmd.v info Term.(const run_swarm $ seed_arg)

(* --- chaos ------------------------------------------------------------------ *)

let run_chaos () seed trials =
  if trials < 1 then `Error (true, "--trials must be at least 1")
  else begin
    let summary = Chaos.run ~seed ~trials () in
    print_string (Chaos.render summary);
    if summary.Chaos.violations = [] then `Ok ()
    else begin
      (* explicit exit 1 (not cmdliner's 124): a violated recovery
         invariant is a test failure, not a CLI usage error *)
      prerr_endline "ratool chaos: recovery invariants violated";
      exit 1
    end
  end

let chaos_cmd =
  let doc =
    "Randomized fault injection (corruption, loss, partitions, crashes) \
     against every scheme, asserting recovery invariants"
  in
  let info = Cmd.info "chaos" ~doc in
  Cmd.v info Term.(ret (const run_chaos $ jobs_term $ seed_arg $ trials_arg 50))

(* --- fleet-chaos ------------------------------------------------------------ *)

let fc_digest r = r.Fleet_chaos.report.Ra_supervisor.Supervisor.counter_digest
let fc_detections r =
  List.length r.Fleet_chaos.report.Ra_supervisor.Supervisor.detections

let default_journal_dir = "fleet-chaos-journal"

(* The crash-recovery proof: for each jobs value, record a campaign into its
   own journal directory, kill it mid-round-K, resume from journal+snapshot,
   and require the finished run to match a never-killed reference run —
   same digest, same detection count, no invariant violations. *)
let kill_resume_proof ~devices ~seed ~rounds ~dir ~kill_at ~all_jobs ?shards () =
  let reference =
    Fleet_chaos.run ~devices ~seed ~jobs:1 ?shards ~max_rounds:rounds ()
  in
  print_string (Fleet_chaos.render reference);
  Printf.printf "\nkill/resume proof: kill at round %d, journals under %s/\n"
    kill_at dir;
  let failures =
    List.concat_map
      (fun j ->
        let subdir = Filename.concat dir (Printf.sprintf "j%d" j) in
        let disk = Ra_journal.Disk.file ~dir:subdir in
        let killed =
          Fleet_chaos.record_killed ~disk ~devices ~seed ~jobs:j ?shards
            ~max_rounds:rounds ~kill_at_round:kill_at ()
        in
        if not killed then
          [ Printf.sprintf
              "jobs=%d: campaign converged before round %d; nothing was killed"
              j kill_at ]
        else
          match Fleet_chaos.resume ~disk ~jobs:j ?shards () with
          | Error e -> [ Printf.sprintf "jobs=%d: resume failed: %s" j e ]
          | Ok r ->
            let problems =
              (if r.Fleet_chaos.violations <> [] then
                 [ Printf.sprintf "jobs=%d: resumed run violated invariants" j ]
               else [])
              @ (if not (String.equal (fc_digest r) (fc_digest reference)) then
                   [ Printf.sprintf "jobs=%d: digest diverged:\n  %s\n  %s" j
                       (fc_digest reference) (fc_digest r) ]
                 else [])
              @
              if fc_detections r <> fc_detections reference then
                [ Printf.sprintf "jobs=%d: detections %d/%d vs reference" j
                    (fc_detections r) (fc_detections reference) ]
              else []
            in
            if problems = [] then
              Printf.printf
                "jobs=%d: killed at round %d, resumed, converged — digest and \
                 %d/%d detections bit-identical to the unkilled run\n"
                j kill_at (fc_detections r) (fc_detections reference);
            problems)
      all_jobs
  in
  if failures = [] && reference.Fleet_chaos.violations = [] then `Ok ()
  else begin
    List.iter (fun m -> Printf.eprintf "ratool fleet-chaos: %s\n" m) failures;
    prerr_endline "ratool fleet-chaos: crash-recovery proof failed";
    exit 1
  end

let run_fleet_chaos devices jobs shards seed rounds check_jobs journal_dir
    kill_at resume =
  if devices < 1 then `Error (true, "--devices must be at least 1")
  else if jobs < 1 then `Error (true, "--jobs must be at least 1")
  else
    match (kill_at, resume) with
    | Some k, _ when k < 1 -> `Error (true, "--kill-at-round must be at least 1")
    | Some k, true ->
      let dir = Option.value journal_dir ~default:default_journal_dir in
      let all_jobs = jobs :: List.filter (fun j -> j <> jobs) check_jobs in
      kill_resume_proof ~devices ~seed ~rounds ~dir ~kill_at:k ~all_jobs
        ?shards ()
    | Some k, false ->
      (* record a crash artifact and stop — resume it in a later invocation *)
      let dir = Option.value journal_dir ~default:default_journal_dir in
      let disk = Ra_journal.Disk.file ~dir in
      let killed =
        Fleet_chaos.record_killed ~disk ~devices ~seed ~jobs ?shards
          ~max_rounds:rounds ~kill_at_round:k ()
      in
      if killed then
        Printf.printf
          "campaign killed after round %d; journal left in %s/\n\
           resume it with: ratool fleet-chaos --resume --journal %s\n"
          k dir dir
      else
        Printf.printf
          "campaign converged before round %d; complete journal in %s/\n" k dir;
      `Ok ()
    | None, true ->
      if check_jobs <> [] then
        `Error
          ( true,
            "--check-jobs does not combine with a bare --resume (resuming \
             completes the journal); use --kill-at-round K --resume" )
      else begin
        let dir = Option.value journal_dir ~default:default_journal_dir in
        let disk = Ra_journal.Disk.file ~dir in
        match Fleet_chaos.resume ~disk ~jobs ?shards () with
        | Error e -> `Error (false, "resume failed: " ^ e)
        | Ok r ->
          print_string (Fleet_chaos.render r);
          if r.Fleet_chaos.violations = [] then `Ok ()
          else begin
            prerr_endline "ratool fleet-chaos: convergence invariants violated";
            exit 1
          end
      end
    | None, false ->
      let journal =
        Option.map
          (fun dir -> Ra_journal.Journal.create (Ra_journal.Disk.file ~dir))
          journal_dir
      in
      let r =
        Fleet_chaos.run ~devices ~seed ~jobs ?shards ?journal
          ~max_rounds:rounds ()
      in
      print_string (Fleet_chaos.render r);
      (match journal_dir with
      | Some dir ->
        Printf.printf "campaign journal recorded in %s/ (ratool replay --journal %s)\n"
          dir dir
      | None -> ());
      let mismatches =
        List.filter_map
          (fun j ->
            let r' =
              Fleet_chaos.run ~devices ~seed ~jobs:j ?shards ~max_rounds:rounds ()
            in
            if String.equal (fc_digest r) (fc_digest r') then begin
              Printf.printf "jobs=%d: counters bit-identical\n" j;
              None
            end
            else
              Some
                (Printf.sprintf "jobs=%d diverged:\n  %s\n  %s" j (fc_digest r)
                   (fc_digest r')))
          check_jobs
      in
      if r.Fleet_chaos.violations = [] && mismatches = [] then `Ok ()
      else begin
        List.iter (fun m -> Printf.eprintf "ratool fleet-chaos: %s\n" m) mismatches;
        prerr_endline "ratool fleet-chaos: convergence invariants violated";
        exit 1
      end

let journal_dir_arg =
  Arg.(
    value & opt (some string) None
    & info [ "journal" ] ~docv:"DIR"
        ~doc:
          "Journal directory: record the campaign's write-ahead log and \
           snapshots there (defaults to $(b,fleet-chaos-journal/) when \
           $(b,--kill-at-round) or $(b,--resume) is given).")

let fleet_chaos_cmd =
  let doc =
    "Fleet-scale chaos: crash/partition/corruption/malware faults on a \
     deterministic schedule under the health supervisor, asserting \
     convergence invariants (jobs-invariant counters with $(b,--check-jobs), \
     durable journals with $(b,--journal), and the crash-recovery proof with \
     $(b,--kill-at-round K --resume))"
  in
  let devices_arg =
    Arg.(
      value & opt int 200
      & info [ "devices" ] ~docv:"N" ~doc:"Fleet size (fault kinds cycle every 10 devices).")
  in
  let fc_jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"J"
          ~doc:"Domains supervising the fleet (results are identical for any value).")
  in
  let rounds_arg =
    Arg.(
      value & opt int 20
      & info [ "rounds" ] ~docv:"R" ~doc:"Supervision round budget (30 s of virtual time each).")
  in
  let kill_at_arg =
    Arg.(
      value & opt (some int) None
      & info [ "kill-at-round" ] ~docv:"K"
          ~doc:
            "Kill the verifier after $(docv) completed rounds, leaving a torn \
             record on the WAL tail. With $(b,--resume), prove recovery: kill, \
             resume and compare against an unkilled reference run for every \
             job count.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Recover the journal in $(b,--journal) and supervise the campaign \
             to convergence (with $(b,--kill-at-round), run the full \
             kill/resume proof instead).")
  in
  let fc_shards_arg =
    Arg.(
      value & opt (some int) None
      & info [ "shards" ] ~docv:"S"
          ~doc:
            "Contiguous roster chunks per supervision round's execute phase \
             (results are identical for any value).")
  in
  let info = Cmd.info "fleet-chaos" ~doc in
  Cmd.v info
    Term.(
      ret
        (const run_fleet_chaos $ devices_arg $ fc_jobs_arg $ fc_shards_arg
       $ seed_arg $ rounds_arg $ check_jobs_arg $ journal_dir_arg
       $ kill_at_arg $ resume_arg))

(* --- replay ------------------------------------------------------------------ *)

(* One verify-mode replay per jobs value; [replay_one] prints per-jobs
   progress and [finish] renders the last verified result. *)
let replay_all ~all_jobs ~replay_one ~finish =
  let outcome =
    List.fold_left
      (fun acc j ->
        match acc with
        | Error _ -> acc
        | Ok _ -> (
          match replay_one j with
          | Error e -> Error (j, e)
          | Ok r ->
            Printf.printf
              "jobs=%d: replayed bit-identically — every record and the \
               final digest verified\n"
              j;
            Ok (Some r)))
      (Ok None) all_jobs
  in
  match outcome with
  | Error (j, e) ->
    Printf.eprintf "ratool replay: jobs=%d diverged from the journal: %s\n" j e;
    exit 1
  | Ok None -> `Ok ()
  | Ok (Some r) ->
    print_newline ();
    finish r

(* The journal's leading campaign record names the experiment that wrote
   it, so replay dispatches on that — the same directory flag serves every
   journaled campaign kind. *)
let journal_experiment disk =
  match Ra_journal.Journal.recover disk with
  | Error _ -> None
  | Ok r ->
    if Array.length r.Ra_journal.Journal.events = 0 then None
    else Ra_journal.Event.find_s r.Ra_journal.Journal.events.(0) "experiment"

let run_replay jobs dir check_jobs =
  if jobs < 1 then `Error (true, "--jobs must be at least 1")
  else begin
    let disk = Ra_journal.Disk.file ~dir in
    let all_jobs = jobs :: List.filter (fun j -> j <> jobs) check_jobs in
    match journal_experiment disk with
    | Some "fleet-roll" ->
      replay_all ~all_jobs
        ~replay_one:(fun j -> Fleet_roll.replay ~disk ~jobs:j ())
        ~finish:(fun r ->
          print_string (Fleet_roll.render r);
          `Ok ())
    | _ ->
      replay_all ~all_jobs
        ~replay_one:(fun j -> Fleet_chaos.replay ~disk ~jobs:j ())
        ~finish:(fun r ->
          print_string (Fleet_chaos.render r);
          if r.Fleet_chaos.violations = [] then `Ok ()
          else begin
            prerr_endline "ratool replay: replayed campaign violated invariants";
            exit 1
          end)
  end

let replay_cmd =
  let doc =
    "Reconstruct fleet state from a recorded journal (snapshot + deltas), \
     re-run the campaign and verify every record bit-identically — counter \
     digests are equal for any $(b,--jobs) value"
  in
  let dir_arg =
    Arg.(
      value & opt string default_journal_dir
      & info [ "journal" ] ~docv:"DIR"
          ~doc:
            "Journal directory recorded by $(b,ratool fleet-chaos --journal) \
             or $(b,ratool fleet --journal); the campaign record inside \
             names the experiment to re-run.")
  in
  let rp_jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"J"
          ~doc:"Domains driving the re-execution (the verified records are \
                identical for any value).")
  in
  let info = Cmd.info "replay" ~doc in
  Cmd.v info
    Term.(ret (const run_replay $ rp_jobs_arg $ dir_arg $ check_jobs_arg))

(* --- bench ------------------------------------------------------------------ *)

let run_bench () full out_dir against tolerance =
  let quick = not full in
  let suites =
    [
      ("BENCH_crypto.json",
       { Benchkit.suite = "crypto"; metrics = Benchkit.crypto_metrics ~quick () });
      ("BENCH_sim.json",
       { Benchkit.suite = "sim"; metrics = Benchkit.sim_metrics ~quick () });
    ]
  in
  (match out_dir with
  | None ->
    List.iter (fun (_, suite) -> print_string (Benchkit.to_json suite)) suites
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun (file, suite) ->
        let path = Filename.concat dir file in
        Benchkit.write_file path suite;
        Printf.printf "wrote %s\n" path)
      suites);
  match against with
  | None -> `Ok ()
  | Some dir ->
    let ok =
      List.for_all
        (fun (file, current) ->
          let path = Filename.concat dir file in
          match Benchkit.read_file path with
          | exception (Benchkit.Parse_error msg | Sys_error msg) ->
            Printf.eprintf "bench: cannot read baseline %s: %s\n" path msg;
            false
          | baseline ->
            Printf.printf "== %s vs %s\n" current.Benchkit.suite path;
            let report, ok =
              Benchkit.render_comparison ~tolerance
                (Benchkit.compare_suites ~tolerance ~baseline ~current)
            in
            print_string report;
            ok)
        suites
    in
    if ok then `Ok () else `Error (false, "benchmark regression beyond tolerance")

let bench_cmd =
  let doc =
    "Quick perf metrics (hash MB/s, engine events/s, experiment wall-times) \
     as BENCH_*.json, optionally diffed against a committed baseline"
  in
  let full_arg =
    Arg.(value & flag & info [ "full" ] ~doc:"Full-size buffers and budgets (slower, steadier).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"DIR" ~doc:"Write BENCH_crypto.json and BENCH_sim.json to $(docv) instead of stdout.")
  in
  let against_arg =
    Arg.(value & opt (some string) None
         & info [ "against" ] ~docv:"DIR" ~doc:"Compare against the baseline BENCH_*.json files in $(docv); non-zero exit on regression.")
  in
  let tolerance_arg =
    Arg.(value & opt float 0.2
         & info [ "tolerance" ] ~docv:"T" ~doc:"Allowed fractional slowdown before a metric counts as regressed (0.2 = 20%).")
  in
  let info = Cmd.info "bench" ~doc in
  Cmd.v info
    Term.(ret (const run_bench $ jobs_term $ full_arg $ out_arg $ against_arg $ tolerance_arg))

(* --- all -------------------------------------------------------------------- *)

let run_all () seed trials =
  ignore (run_fig1 seed "smart");
  print_newline ();
  run_fig2 ();
  print_newline ();
  run_table1 () seed trials;
  print_newline ();
  run_fig4 seed;
  print_newline ();
  run_fig5 seed trials;
  print_newline ();
  run_smarm () seed trials;
  print_newline ();
  run_fire seed;
  print_newline ();
  run_ablations () seed;
  print_newline ();
  run_seed_demo seed;
  print_newline ();
  run_swarm seed;
  print_newline ();
  run_swatt seed;
  print_newline ();
  run_dos seed;
  print_newline ();
  run_latency seed;
  print_newline ();
  run_incremental seed;
  print_newline ();
  run_hydra seed;
  print_newline ();
  run_heartbeat seed;
  print_newline ();
  run_fleet_demo ()

(* --- attestation server over TCP ----------------------------------------- *)

let port_arg =
  Arg.(
    value & opt int 7411
    & info [ "port" ] ~docv:"PORT" ~doc:"TCP port of the attestation server.")

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind/connect (IPv4 literal).")

let server_devices_arg =
  Arg.(
    value & opt int 32
    & info [ "devices" ] ~docv:"N"
        ~doc:
          "Fleet size. Server and load generator derive the same roster and \
           keys from (devices, seed) — keep the two invocations in agreement.")

let reports_arg =
  Arg.(
    value & opt int 4
    & info [ "reports" ] ~docv:"R" ~doc:"Attestation reports per device.")

let serve_cmd =
  let doc =
    "Run the attestation control plane: a crash-tolerant TCP server with a \
     bounded ingest queue (overload sheds typed Busy frames), routed \
     fleet-health/quarantine/root endpoints, and every accepted report \
     journaled before acknowledgement. If $(b,--dir) holds a journal, the \
     server restarts through Journal.restart — kill -9 it freely."
  in
  let dir_arg =
    Arg.(
      value & opt string "_server"
      & info [ "dir" ] ~docv:"DIR" ~doc:"Journal directory (created if missing).")
  in
  let capacity_arg =
    Arg.(
      value & opt int 64
      & info [ "capacity" ] ~docv:"K"
          ~doc:"Bounded queue depth; submissions beyond it shed with Busy.")
  in
  let fresh_arg =
    Arg.(
      value & flag
      & info [ "fresh" ]
          ~doc:"Discard any existing journal instead of recovering from it.")
  in
  let run () host port dir devices seed capacity fresh =
    if capacity < 1 then `Error (true, "--capacity must be at least 1")
    else if devices < 1 then `Error (true, "--devices must be at least 1")
    else
      Ra_server.Tcp.serve ~host ~port ~dir
        ~config:{ Ra_server.Core.devices; seed; capacity }
        ~fresh ()
  in
  let info = Cmd.info "serve" ~doc in
  Cmd.v info
    Term.(
      ret
        (const run $ jobs_term $ host_arg $ port_arg $ dir_arg
       $ server_devices_arg $ seed_arg $ capacity_arg $ fresh_arg))

let loadgen_cmd =
  let doc =
    "Drive a deterministic seeded attestation campaign against a running \
     server ($(b,ratool serve)): one connection per device, RFC 6298 \
     retry/backoff on Busy and timeouts, reconnect-with-backoff across \
     server restarts. Prints client and server counters, throughput, and \
     the final fleet Merkle root; fails unless every report is acknowledged \
     and the verdict table matches the plan's infected set."
  in
  let run () host port devices seed reports =
    match
      Ra_server.Tcp.run_campaign ~host ~port ~devices ~seed
        ~reports_per_device:reports ()
    with
    | Error e -> `Error (false, "loadgen: " ^ e)
    | Ok c ->
        print_string (Ra_server.Tcp.render_campaign c);
        let expected = Ra_server.Loadgen.expected_tampered ~devices in
        if c.Ra_server.Tcp.acked <> devices * reports then begin
          prerr_endline "ratool loadgen: campaign did not retire every report";
          exit 1
        end
        else if c.Ra_server.Tcp.tampered <> expected then begin
          Printf.eprintf
            "ratool loadgen: verdict table shows %d tampered devices, plan \
             infected %d\n"
            c.Ra_server.Tcp.tampered expected;
          exit 1
        end
        else `Ok ()
  in
  let info = Cmd.info "loadgen" ~doc in
  Cmd.v info
    Term.(
      ret
        (const run $ jobs_term $ host_arg $ port_arg $ server_devices_arg
       $ seed_arg $ reports_arg))

let server_chaos_cmd =
  let doc =
    "End-to-end chaos for the control plane, in process: seeded loadgen \
     campaigns over a simulated network under torn writes, stalls, \
     mid-frame resets and corruption, with a kill -9 injected mid-ingest. \
     Asserts that the restarted campaign converges to the exact state of an \
     unkilled fault-free run (bit-identical fleet root, identical accepted \
     count and verdict split) and that outcomes are deterministic per seed \
     and invariant across $(b,--jobs)."
  in
  let sc_devices_arg =
    Arg.(
      value & opt int 24
      & info [ "devices" ] ~docv:"N" ~doc:"Fleet size per trial.")
  in
  let sc_capacity_arg =
    Arg.(
      value & opt int 8
      & info [ "capacity" ] ~docv:"K"
          ~doc:"Queue depth (small enough that bursts must shed).")
  in
  let run () seed trials devices reports capacity =
    if trials < 1 then `Error (true, "--trials must be at least 1")
    else begin
      let report =
        Ra_server.Server_chaos.run ~trials ~devices ~reports_per_device:reports
          ~capacity ~seed ()
      in
      print_string (Ra_server.Server_chaos.render report);
      if Ra_server.Server_chaos.ok report then `Ok ()
      else begin
        prerr_endline "ratool server-chaos: recovery invariants violated";
        exit 1
      end
    end
  in
  let info = Cmd.info "server-chaos" ~doc in
  Cmd.v info
    Term.(
      ret
        (const run $ jobs_term $ seed_arg $ trials_arg 5 $ sc_devices_arg
       $ reports_arg $ sc_capacity_arg))

let all_cmd =
  let info = Cmd.info "all" ~doc:"Run every experiment" in
  Cmd.v info Term.(const run_all $ jobs_term $ seed_arg $ trials_arg 40)

let main =
  let doc = "Reproduction harness: RA vs safety-critical operation (DAC'18)" in
  let info = Cmd.info "ratool" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      fig1_cmd;
      fig2_cmd;
      table1_cmd;
      fig4_cmd;
      fig5_cmd;
      smarm_cmd;
      fire_cmd;
      ablations_cmd;
      seed_cmd;
      swarm_cmd;
      dos_cmd;
      sched_cmd;
      advisor_cmd;
      report_cmd;
      rollout_cmd;
      incremental_cmd;
      latency_cmd;
      hydra_cmd;
      swatt_cmd;
      heartbeat_cmd;
      fleet_cmd;
      chaos_cmd;
      fleet_chaos_cmd;
      replay_cmd;
      serve_cmd;
      loadgen_cmd;
      server_chaos_cmd;
      bench_cmd;
      all_cmd;
    ]

let () = exit (Cmd.eval main)
