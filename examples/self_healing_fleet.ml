(* A fleet that heals itself.

   Run with: dune exec examples/self_healing_fleet.exe

   50 devices under one supervisor. At t=35 s malware lands on three of
   them; two others fall into a crash loop (down 400 ms of every 500 ms)
   from t=30 s on. Every 30 s supervision round the fleet is measured, the
   per-device health machines move, and the timeline below prints one glyph
   per device:

     .  Healthy       ?  Suspect      u  Unreachable   C  Compromised
     Q  Quarantined   r  Remediating  p  Probation

   Watch the three infected devices march C -> Q -> r -> p -> . (detected,
   isolated, reflashed, on probation, re-admitted) while the crash-loopers
   drift ? -> u -> Q as their circuit breakers burn through the probe
   budget. The run ends when the fleet converges: every device Healthy or
   Quarantined with a recorded reason, and a full round passes with no
   transition. *)

open Ra_sim
open Ra_device
open Ra_core
open Ra_supervisor

let fleet_size = 50
let infected = [ 7; 23; 41 ]
let crash_loopers = [ 11; 30 ]

let glyph = function
  | Health.Healthy -> '.'
  | Health.Suspect -> '?'
  | Health.Unreachable -> 'u'
  | Health.Compromised -> 'C'
  | Health.Quarantined -> 'Q'
  | Health.Remediating -> 'r'
  | Health.Probation -> 'p'

let () =
  let fleet =
    Fleet.create
      ~master_secret:(Bytes.of_string "self-healing fleet example secret") ()
  in
  let ids =
    List.init fleet_size (fun i ->
        let id = Printf.sprintf "dev-%02d" i in
        ignore
          (Fleet.provision fleet id
             ~config:
               {
                 Device.default_config with
                 Device.blocks = 16;
                 block_size = 256;
                 modeled_block_bytes = 1024 * 1024;
               }
             ());
        id)
  in
  let sup = Supervisor.create fleet in
  List.iter
    (fun i ->
      let device = Fleet.device fleet (Printf.sprintf "dev-%02d" i) in
      ignore
        (Ra_malware.Malware.install device
           ~rng:(Prng.create ~seed:(100 + i))
           ~block:(i mod 16) ~priority:8
           (Ra_malware.Malware.Transient
              { enter = Timebase.s 35; leave = Timebase.s 100_000 })))
    infected;
  List.iter
    (fun i ->
      let device = Fleet.device fleet (Printf.sprintf "dev-%02d" i) in
      let eng = device.Device.engine in
      let rec tick _ =
        Device.crash ~reboot_delay:(Timebase.ms 400) device;
        ignore (Engine.schedule_after eng ~delay:(Timebase.ms 500) tick)
      in
      ignore (Engine.schedule_after eng ~delay:(Timebase.s 30) tick))
    crash_loopers;
  Printf.printf "50-device fleet: malware on %s at t=35s, crash loops on %s from t=30s\n"
    (String.concat ", " (List.map (Printf.sprintf "dev-%02d") infected))
    (String.concat ", " (List.map (Printf.sprintf "dev-%02d") crash_loopers));
  Printf.printf "legend: .=healthy ?=suspect u=unreachable C=compromised Q=quarantined r=remediating p=probation\n\n";
  let states () = List.map (fun id -> Supervisor.health sup id) ids in
  let print_row round states =
    Printf.printf "round %2d (t=%3ds)  %s\n" round (round * 30)
      (String.init fleet_size (fun i -> glyph (List.nth states i)))
  in
  let rec loop prev =
    let report = Supervisor.report sup in
    (* the faults land from t=30 s on, so don't trust an early quiet round *)
    if
      (report.Supervisor.converged && Supervisor.rounds_run sup >= 4)
      || Supervisor.rounds_run sup >= 20
    then ()
    else begin
      Supervisor.round sup;
      let now = states () in
      if now <> prev || Supervisor.rounds_run sup <= 1 then
        print_row (Supervisor.rounds_run sup) now;
      loop now
    end
  in
  print_row 0 (states ());
  loop (states ());
  let report = Supervisor.report sup in
  Printf.printf "\nconverged after %d rounds: %d healthy, %d quarantined\n"
    report.Supervisor.rounds
    (List.length report.Supervisor.healthy)
    (List.length report.Supervisor.quarantined);
  List.iter
    (fun (id, reason) ->
      Printf.printf "  %s quarantined: %s\n" id (Health.cause_to_string reason))
    report.Supervisor.quarantined;
  List.iter
    (fun (id, round) ->
      Printf.printf "  %s detected tampered in round %d, remediated: %b\n" id
        round
        (List.mem id report.Supervisor.remediated))
    report.Supervisor.detections
