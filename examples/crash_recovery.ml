(* A power failure in the middle of attestation, end to end.

   Run with: dune exec examples/crash_recovery.exe

   Timeline: the verifier challenges the prover; the prover authenticates
   and starts measuring; at 300 ms the device loses power mid-measurement.
   The half-finished measurement dies with the CPU (there is no report to
   leak), the device reboots 250 ms later with its session state gone, and
   the verifier's retransmission — paced by exponential backoff — triggers
   a completely fresh measurement on the new boot. The verdict is Clean,
   produced by the second boot's measurement, never by stale pre-crash
   state.

   The second act repeats the crash with the report already measured and
   cached (a partition kept it from reaching the verifier). The reboot
   wipes the cache, so the prover measures again instead of replaying the
   stale report: measurement count 2, not 1. *)

open Ra_sim
open Ra_device
open Ra_core

let show label (r : Reliable_protocol.result) device =
  Printf.printf
    "%-28s verdict=%-7s attempts=%d measurements=%d crashes=%d completed=%s\n"
    label
    (match r.Reliable_protocol.verdict with
    | Some v -> Verifier.verdict_to_string v
    | None -> "timeout")
    r.Reliable_protocol.attempts r.Reliable_protocol.measurements_run
    (Device.crash_count device)
    (match r.Reliable_protocol.completed_at with
    | Some t -> Timebase.to_string t
    | None -> "-")

let session ~label ~channel ~crash_at =
  let device =
    Device.create
      {
        Device.default_config with
        Device.block_size = 256;
        modeled_block_bytes = 1024 * 1024 (* MP ~ 0.58 s *);
      }
  in
  let eng = device.Device.engine in
  let verifier = Verifier.of_device device in
  Device.on_crash device (fun () ->
      Printf.printf "  %-8s power lost\n" (Timebase.to_string (Engine.now eng)));
  Device.on_reboot device (fun () ->
      Printf.printf "  %-8s rebooted (volatile state gone)\n"
        (Timebase.to_string (Engine.now eng)));
  let result = ref None in
  Reliable_protocol.run device verifier
    {
      Reliable_protocol.default_config with
      Reliable_protocol.channel;
      retry_timeout = Timebase.s 2;
      backoff_jitter = 0.;
      max_attempts = 6;
    }
    ~on_done:(fun r -> result := Some r)
    ();
  ignore (Engine.schedule eng ~at:crash_at (fun _ -> Device.crash device));
  Engine.run eng;
  match !result with
  | Some r -> show label r device
  | None -> print_endline "session hung"

let () =
  print_endline "== crash mid-measurement ==";
  session ~label:"fresh measurement after boot"
    ~channel:{ Channel.ideal with Channel.delay = Timebase.ms 10 }
    ~crash_at:(Timebase.ms 300);

  print_endline "\n== crash with a cached report (partition until 1.5 s) ==";
  session ~label:"stale cache not replayed"
    ~channel:
      {
        Channel.ideal with
        Channel.delay = Timebase.ms 10;
        partitions = [ (Timebase.ms 100, Timebase.ms 1500) ];
      }
    ~crash_at:(Timebase.s 1)
