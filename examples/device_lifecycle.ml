(* A device's whole security lifecycle in one run.

   Run with: dune exec examples/device_lifecycle.exe

   1. The provisioned device attests clean over a lossy network (the
      protocol retries with the same nonce; the prover absorbs duplicates).
   2. Malware lands; the next attestation flags it despite 40% packet loss.
   3. Remediation: a proof of secure erasure wipes everything — including a
      cheating attempt to spare the malware's block, which flips the proof —
      then new firmware is installed and attested.
   4. The refreshed device attests clean again. *)

open Ra_sim
open Ra_device
open Ra_core

let lossy = { Channel.ideal with Channel.loss = 0.4 }

let attest device verifier label =
  let result = ref None in
  Reliable_protocol.run device verifier
    {
      Reliable_protocol.default_config with
      Reliable_protocol.channel = lossy;
      max_attempts = 10;
      retry_timeout = Timebase.s 12;
    }
    ~on_done:(fun r -> result := Some r)
    ();
  Engine.run device.Device.engine;
  match !result with
  | None -> failwith "session hung"
  | Some r ->
    Printf.printf "%-34s verdict=%-8s attempts=%d dup-suppressed=%d measurements=%d\n"
      label
      (match r.Reliable_protocol.verdict with
      | Some v -> Verifier.verdict_to_string v
      | None -> "timeout")
      r.Reliable_protocol.attempts r.Reliable_protocol.duplicates_suppressed
      r.Reliable_protocol.measurements_run

let () =
  let device = Device.create { Device.default_config with Device.block_size = 256 } in
  let verifier = Verifier.of_device device in

  print_endline "== 1. healthy device, lossy network ==";
  attest device verifier "initial attestation";

  print_endline "\n== 2. infection ==";
  let rng = Prng.split (Engine.prng device.Device.engine) in
  ignore (Ra_malware.Malware.install device ~rng ~block:23 ~priority:8 Ra_malware.Malware.Static);
  attest device verifier "attestation after infection";

  print_endline "\n== 3. remediation: erase (cheating attempt first), then update ==";
  let run_update ?cheat_blocks label =
    let outcome = ref None in
    Code_update.run device Code_update.default_config ?cheat_blocks ~new_seed:4242
      ~on_done:(fun o -> outcome := Some o)
      ();
    Engine.run device.Device.engine;
    match !outcome with
    | None -> failwith "update hung"
    | Some o ->
      Printf.printf "%-34s proof=%-8s malware=%s verdict=%s\n" label
        (if o.Code_update.erasure_proof_ok then "accepted" else "REJECTED")
        (if o.Code_update.malware_survived then "resident" else "wiped")
        (Verifier.verdict_to_string o.Code_update.update_verdict)
  in
  (* compromised erasure code tries to protect its own block *)
  run_update ~cheat_blocks:[ 23 ] "erase, skipping malware's block";
  (* honest erasure succeeds and the update goes through *)
  run_update "honest erase + install";

  print_endline "\n== 4. refreshed device ==";
  let new_verifier =
    Verifier.create ~key:device.Device.config.Device.key
      ~expected_image:
        (Device.firmware_image ~seed:4242 ~size:(Ra_device.Memory.size device.Device.memory))
      ~block_size:(Ra_device.Memory.block_size device.Device.memory)
      ~data_blocks:[] ~zero_data:false ()
  in
  attest device new_verifier "attestation of the new firmware"
